#include "sim/network.hpp"

#include <algorithm>
#include <bit>
#include <stdexcept>

#include "common/checkpoint.hpp"

namespace dragonfly {

namespace {
/// Validate before any member construction: HotLayout/HotState sizing
/// depends on the VC-count knobs, and a malformed config must fail
/// with validate()'s diagnostic, not a length_error from a negative
/// prefix sum cast to an allocation size.
const SimConfig& validated(const SimConfig& cfg) {
  cfg.validate();
  return cfg;
}
}  // namespace

Network::Network(const SimConfig& cfg)
    : cfg_(validated(cfg)),
      topo_(make_topology(cfg_)),
      routing_(make_routing(*topo_, cfg_)),
      traffic_(make_traffic(*topo_, cfg_)),
      collector_(*topo_, cfg_),
      hot_(HotLayout::make(*topo_, cfg_), topo_->num_routers()) {
  active_kernel_ = cfg_.kernel == SimKernel::kActive;
  routing_wants_refresh_ = routing_->wants_refresh();
  // Size the event ring past the largest scheduling delay (packet/credit
  // link latencies and delivery serialization) so it never grows in
  // steady state.
  const Cycle horizon =
      std::max({cfg_.local_latency, cfg_.global_latency,
                static_cast<Cycle>(cfg_.packet_size),
                static_cast<Cycle>(cfg_.pipeline_latency), Cycle{1}});
  grow_ring(horizon);
  // The transmit calendar only spans pipeline + serialization delays.
  grow_tx_ring(std::max({static_cast<Cycle>(cfg_.pipeline_latency),
                         static_cast<Cycle>(cfg_.packet_size), Cycle{1}}));
  build();
}

void Network::build() {
  const Rng root(cfg_.seed);
  const int R = topo_->num_routers();
  const int N = topo_->num_nodes();
  const int p = topo_->concentration();

  collector_.attach_routers(R);
  routers_.reserve(static_cast<std::size_t>(R));
  for (RouterId r = 0; r < R; ++r) {
    routers_.push_back(std::make_unique<Router>(
        *topo_, cfg_, r, routing_.get(), &store_, this,
        root.child(0x1000000ull + static_cast<std::uint64_t>(r)), &hot_));
    routers_.back()->bind_counters(collector_.router_injected_total(r),
                                   collector_.router_injected_measured(r),
                                   collector_.router_forwarded_total(r));
    routers_.back()->set_event_driven_tx(active_kernel_);
  }

  // Wiring. Input port X of a router mirrors output port X of its peer.
  for (RouterId r = 0; r < R; ++r) {
    Router& router = *routers_[static_cast<std::size_t>(r)];
    // Injection inputs / ejection outputs (one per attached node).
    for (int i = 0; i < p; ++i) {
      router.wire_input(topo_->injection_port(i), PortKind::kInjection,
                        kInvalidRouter, kInvalidPort, 0);
      router.wire_output(topo_->ejection_port(i), PortKind::kEjection,
                         kInvalidRouter, kInvalidPort, 0);
    }
    // Local links.
    for (PortId port = topo_->first_local_port();
         port < topo_->first_global_port(); ++port) {
      const RouterId peer = topo_->local_peer(r, port);
      const PortId peer_port = topo_->local_port_to(peer, r);
      router.wire_output(port, PortKind::kLocal, peer, peer_port,
                         cfg_.local_latency);
      router.wire_input(port, PortKind::kLocal, peer, peer_port,
                        cfg_.local_latency);
    }
    // Global links. Dead slots of trimmed shapes are wired with an
    // invalid peer: their buffers exist (occupancy queries return 0)
    // but no route or candidate set ever selects them.
    for (PortId port = topo_->first_global_port();
         port < topo_->ports_per_router(); ++port) {
      const bool connected = topo_->global_connected(r, port);
      const RouterId peer = connected ? topo_->global_peer(r, port)
                                      : kInvalidRouter;
      const PortId peer_port = connected ? topo_->global_peer_port(r, port)
                                         : kInvalidPort;
      router.wire_output(port, PortKind::kGlobal, peer, peer_port,
                         cfg_.global_latency);
      router.wire_input(port, PortKind::kGlobal, peer, peer_port,
                        cfg_.global_latency);
    }
  }

  nodes_.reserve(static_cast<std::size_t>(N));
  router_of_node_.reserve(static_cast<std::size_t>(N));
  for (NodeId n = 0; n < N; ++n) {
    nodes_.emplace_back(n, routers_[static_cast<std::size_t>(
                               topo_->router_of_node(n))].get(),
                        traffic_.get(), routing_.get(), &store_, &cfg_,
                        root.child(static_cast<std::uint64_t>(n)));
    router_of_node_.push_back(topo_->router_of_node(n));
  }

  alloc_active_.assign((static_cast<std::size_t>(R) + 63) / 64, 0);
  gen_mask_.assign((static_cast<std::size_t>(N) + 63) / 64, 0);
  queue_mask_.assign((static_cast<std::size_t>(N) + 63) / 64, 0);
  rebuild_node_masks();
}

void Network::rebuild_node_masks() {
  std::fill(gen_mask_.begin(), gen_mask_.end(), 0);
  std::fill(queue_mask_.begin(), queue_mask_.end(), 0);
  generating_nodes_ = 0;
  for (std::size_t n = 0; n < nodes_.size(); ++n) {
    if (nodes_[n].generates()) {
      ++generating_nodes_;
      gen_mask_[n >> 6] |= 1ull << (n & 63);
    }
    if (nodes_[n].queue_length() > 0) {
      queue_mask_[n >> 6] |= 1ull << (n & 63);
    }
  }
}

void Network::rebuild_activation() {
  rebuild_node_masks();
  std::fill(alloc_active_.begin(), alloc_active_.end(), 0);
  for (const auto& router : routers_) {
    if (router->has_buffered()) mark_alloc_active(router->id());
  }
  for (auto& bucket : tx_ring_) bucket.clear();
  if (!active_kernel_) return;
  // Re-derive the transmit calendar: every non-empty output queue has
  // exactly one outstanding fire at its head's exact wire time. A fire
  // in the past is impossible for state saved between cycles (the
  // transmit phase would have consumed it), so treat it as corruption.
  const int ports = hot_.layout().ports;
  for (const auto& router : routers_) {
    for (PortId port = 0; port < ports; ++port) {
      const OutputPort& out = router->output(port);
      if (out.queue_empty()) continue;
      const Cycle fire = out.next_fire();
      if (fire < now_) {
        throw std::runtime_error(
            "checkpoint: transmit deadline in the past (corrupt stream)");
      }
      schedule_port_ready(router->id(), port, fire);
    }
  }
}

void Network::step() {
  // Paranoid-mode invariant sweep (sim.paranoid=N; free when off).
  if (cfg_.sim_paranoid > 0 && now_ % cfg_.sim_paranoid == 0) {
    check_invariants();
  }
  // Phase 0: dispatch the events due this cycle — packet arrivals,
  // credit returns, deliveries — in insertion order (the deterministic
  // tie-break). The bucket is swapped out before dispatching so a
  // handler that schedules an event (and possibly grows the ring,
  // invalidating bucket references) can never dangle this iteration;
  // swapping back next cycle recycles the bucket's storage. Packet
  // arrivals activate their router for the allocation phase.
  due_scratch_.clear();
  due_scratch_.swap(ring_[static_cast<std::size_t>(now_) & ring_mask_]);
  for (const Event& ev : due_scratch_) dispatch(ev);
  dispatched_events_ += static_cast<std::int64_t>(due_scratch_.size());
  // Phase 1: global routing state (PiggyBack's in-group broadcast);
  // skipped entirely for mechanisms without per-cycle global state.
  if (routing_wants_refresh_) {
    routing_->refresh(std::span<const std::unique_ptr<Router>>(routers_));
  }
  const bool measuring = collector_.measuring();
  if (!active_kernel_) {
    // Dense reference kernel: scan everything every cycle.
    for (auto& node : nodes_) node.step(now_, measuring, generation_enabled_);
    for (auto& router : routers_) router->allocate(now_);
    for (auto& router : routers_) router->transmit(now_);
    ++now_;
    return;
  }
  // Phase 2: traffic generation and injection over the active nodes —
  // generators (while generation is on) plus nodes with queued packets.
  // Skipped nodes are exact no-ops (no RNG draw, no state change), so
  // results match the dense scan bit for bit.
  for (std::size_t w = 0; w < queue_mask_.size(); ++w) {
    std::uint64_t bits =
        (generation_enabled_ ? gen_mask_[w] : 0) | queue_mask_[w];
    while (bits != 0) {
      const auto n = (w << 6) + static_cast<std::size_t>(
                                    std::countr_zero(bits));
      bits &= bits - 1;
      Node& node = nodes_[n];
      if (node.step(now_, measuring, generation_enabled_)) {
        mark_alloc_active(router_of_node_[n]);
      }
      const std::uint64_t bit = 1ull << (n & 63);
      if (node.queue_length() > 0) {
        queue_mask_[w] |= bit;
      } else {
        queue_mask_[w] &= ~bit;
      }
    }
  }
  // Phase 3: switch allocation over the active routers, ascending id —
  // the dense-scan visit order, so per-router RNG draws and downstream
  // event insertion order are unchanged. A router leaves the set once
  // its input buffers drain.
  for (std::size_t w = 0; w < alloc_active_.size(); ++w) {
    std::uint64_t bits = alloc_active_[w];
    if (bits == 0) continue;
    std::uint64_t keep = bits;
    while (bits != 0) {
      const int b = std::countr_zero(bits);
      bits &= bits - 1;
      const auto r = static_cast<RouterId>((w << 6) + static_cast<std::size_t>(b));
      Router& router = *routers_[static_cast<std::size_t>(r)];
      router.allocate(now_);
      if (!router.has_buffered()) keep &= ~(1ull << b);
    }
    alloc_active_[w] = keep;
  }
  // Phase 4: link transfer, event-driven. Every entry in this cycle's
  // transmit bucket is an output port whose head goes on the wire
  // exactly now; sorting the flat (router, port) ids reproduces the
  // dense scan's (router, port) processing order.
  tx_scratch_.clear();
  tx_scratch_.swap(tx_ring_[static_cast<std::size_t>(now_) & tx_ring_mask_]);
  if (!tx_scratch_.empty()) {
    std::sort(tx_scratch_.begin(), tx_scratch_.end());
    const int ports = hot_.layout().ports;
    for (const std::int32_t rp : tx_scratch_) {
      routers_[static_cast<std::size_t>(rp / ports)]->transmit_due(
          rp % ports, now_);
    }
  }
  ++now_;
}

void Network::dispatch(const Event& ev) {
  switch (ev.type) {
    case Event::Type::kPacket:
      routers_[static_cast<std::size_t>(ev.router)]->packet_arrival(
          ev.port, ev.vc, ev.pkt, ev.when);
      mark_alloc_active(ev.router);
      break;
    case Event::Type::kCredit:
      routers_[static_cast<std::size_t>(ev.router)]->credit_arrival(
          ev.port, ev.vc, ev.phits);
      break;
    case Event::Type::kDelivery: {
      const Packet& pkt = store_[ev.pkt];
      collector_.on_delivered(pkt, ev.when);
      store_.destroy(ev.pkt);
      break;
    }
  }
}

void Network::begin_measurement() {
  collector_.begin_measurement(now_);
  collector_.reset_measured_router_counters();
  for (auto& router : routers_) router->set_measuring(true);
  for (auto& node : nodes_) node.reset_measured_counters();
}

void Network::end_measurement() {
  collector_.end_measurement(now_);
  for (auto& router : routers_) router->set_measuring(false);
}

void Network::check_invariants() const {
  auto fail = [this](const std::string& what) {
    throw std::logic_error("check_invariants @" + std::to_string(now_) +
                           ": " + what);
  };
  const HotLayout& l = hot_.layout();
  const int ports = l.ports;
  const int R = topo_->num_routers();
  std::vector<int> refs(store_.capacity(), 0);
  auto note = [&](PacketRef ref, const char* where) {
    if (ref < 0 || static_cast<std::size_t>(ref) >= refs.size()) {
      fail(std::string(where) + " holds out-of-range packet ref " +
           std::to_string(ref));
    }
    ++refs[static_cast<std::size_t>(ref)];
  };

  // Credit accounting: every output VC within [0, capacity]. One
  // contiguous pass over the SoA arrays instead of an object walk.
  {
    const auto& credits = hot_.all_credits();
    const auto& caps = hot_.all_credit_capacity();
    for (std::size_t i = 0; i < credits.size(); ++i) {
      if (credits[i] < 0 || credits[i] > caps[i]) {
        fail("flat output VC " + std::to_string(i) + " credits " +
             std::to_string(credits[i]) + " outside [0, " +
             std::to_string(caps[i]) + "]");
      }
    }
  }

  // Input FIFOs: occupancy array vs mask vs contents. Only non-empty
  // VCs (mask bits) pay the object walk; the contiguous occupancy scan
  // catches a non-empty FIFO whose mask bit was lost.
  for (RouterId r = 0; r < R; ++r) {
    const Router& router = *routers_[static_cast<std::size_t>(r)];
    const std::int32_t* occ = hot_.in_occupancy(r);
    const PacketRef* heads = hot_.in_head(r);
    const std::uint64_t* mask = hot_.in_mask(r);
    int buffered = 0;
    for (int flat = 0; flat < l.in_stride(); ++flat) {
      const bool bit = (mask[flat >> 6] >> (flat & 63)) & 1;
      if ((occ[flat] > 0) != bit) {
        fail("router " + std::to_string(r) + " flat input VC " +
             std::to_string(flat) + " occupancy " +
             std::to_string(occ[flat]) + " inconsistent with mask bit " +
             std::to_string(bit));
      }
      if (!bit) continue;
      const PortId port = l.port_of_in_vc[static_cast<std::size_t>(flat)];
      const VcId vc = static_cast<VcId>(
          flat - l.in_vc_off[static_cast<std::size_t>(port)]);
      const VcFifo& fifo =
          router.input(port).vcs[static_cast<std::size_t>(vc)];
      int phits = 0;
      for (const PacketRef ref : fifo.contents()) {
        note(ref, "input fifo");
        phits += store_[ref].size_phits;
      }
      buffered += static_cast<int>(fifo.packets());
      if (phits != occ[flat] || phits > fifo.capacity()) {
        fail("input fifo occupancy " + std::to_string(occ[flat]) +
             " != buffered phits " + std::to_string(phits) +
             " (capacity " + std::to_string(fifo.capacity()) + ")");
      }
      if (heads[flat] != fifo.contents().front()) {
        fail("router " + std::to_string(r) + " flat input VC " +
             std::to_string(flat) + " head slot " +
             std::to_string(heads[flat]) + " != FIFO front " +
             std::to_string(fifo.contents().front()));
      }
    }
    if (active_kernel_ && buffered > 0 &&
        ((alloc_active_[static_cast<std::size_t>(r) >> 6] >>
          (static_cast<std::size_t>(r) & 63) & 1) == 0)) {
      fail("router " + std::to_string(r) +
           " has buffered packets but is not in the allocation set");
    }
  }

  // Output queues: walk contents only where the occupancy counter says
  // there is a backlog.
  for (RouterId r = 0; r < R; ++r) {
    const Router& router = *routers_[static_cast<std::size_t>(r)];
    for (PortId port = 0; port < ports; ++port) {
      const OutputPort& out = router.output(port);
      if (out.queue_occupancy() == 0 && out.queue_empty()) continue;
      int phits = 0;
      for (const PendingTx& tx : out.pending()) {
        note(tx.pkt, "output queue");
        phits += store_[tx.pkt].size_phits;
      }
      if (phits != out.queue_occupancy()) {
        fail("router " + std::to_string(r) + " port " + std::to_string(port) +
             " queue occupancy " + std::to_string(out.queue_occupancy()) +
             " != queued phits " + std::to_string(phits));
      }
    }
  }

  // Node source queues.
  for (const Node& node : nodes_) {
    for (const PacketRef ref : node.source_queue()) note(ref, "node queue");
  }

  // Pending events: packets in flight / awaiting delivery, and the ring
  // horizon (a clamped event may carry when <= now, but nothing may be
  // booked past the ring's span).
  for (const auto& bucket : ring_) {
    for (const Event& ev : bucket) {
      if (ev.when > now_ + static_cast<Cycle>(ring_.size())) {
        fail("event due @" + std::to_string(ev.when) +
             " is beyond the ring horizon of " +
             std::to_string(ring_.size()) + " cycles");
      }
      if (ev.type != Event::Type::kCredit) note(ev.pkt, "event ring");
    }
  }

  // Transmit calendar (active kernel): every non-empty output queue has
  // exactly one outstanding fire, booked at its head's exact wire time.
  if (active_kernel_) {
    std::vector<std::uint8_t> fires(
        static_cast<std::size_t>(R) * static_cast<std::size_t>(ports), 0);
    for (std::size_t k = 0; k < tx_ring_.size(); ++k) {
      const auto t = static_cast<Cycle>(static_cast<std::size_t>(now_) + k);
      for (const std::int32_t rp :
           tx_ring_[static_cast<std::size_t>(t) & tx_ring_mask_]) {
        const auto r = static_cast<RouterId>(rp / ports);
        const auto port = static_cast<PortId>(rp % ports);
        const OutputPort& out =
            routers_[static_cast<std::size_t>(r)]->output(port);
        if (out.queue_empty()) {
          fail("transmit fire for empty queue (router " + std::to_string(r) +
               " port " + std::to_string(port) + ")");
        }
        if (out.next_fire() != t) {
          fail("transmit fire @" + std::to_string(t) + " but router " +
               std::to_string(r) + " port " + std::to_string(port) +
               " head is due @" + std::to_string(out.next_fire()));
        }
        ++fires[static_cast<std::size_t>(rp)];
      }
    }
    for (RouterId r = 0; r < R; ++r) {
      for (PortId port = 0; port < ports; ++port) {
        const OutputPort& out =
            routers_[static_cast<std::size_t>(r)]->output(port);
        const std::uint8_t n =
            fires[static_cast<std::size_t>(r) * static_cast<std::size_t>(ports) +
                  static_cast<std::size_t>(port)];
        if (!out.queue_empty() && n != 1) {
          fail("router " + std::to_string(r) + " port " +
               std::to_string(port) + " has " + std::to_string(n) +
               " outstanding transmit fires (want 1)");
        }
      }
    }
  }

  // Orphan sweep: every live arena slot referenced exactly once, every
  // dead slot unreferenced.
  const std::vector<char> live = store_.live_mask();
  for (std::size_t slot = 0; slot < refs.size(); ++slot) {
    if (live[slot] && refs[slot] != 1) {
      fail("live packet " + std::to_string(store_[static_cast<PacketRef>(
               slot)].id) + " in slot " + std::to_string(slot) +
           " referenced " + std::to_string(refs[slot]) +
           " times (orphaned or duplicated)");
    }
    if (!live[slot] && refs[slot] != 0) {
      fail("freed slot " + std::to_string(slot) + " still referenced " +
           std::to_string(refs[slot]) + " times");
    }
  }
}

void Network::push_event(Cycle when, const Event& ev) {
  // Valid configs (link latencies and packet sizes >= 1, enforced by
  // SimConfig::validate) always book events in the future, making bucket
  // order identical to the old (when, seq) priority-queue order. The
  // defensive clamp keeps a stray past event from landing in a stale
  // bucket; its stored `when` is preserved for the handlers.
  const Cycle due = when <= now_ ? now_ + 1 : when;
  if (due - now_ >= static_cast<Cycle>(ring_.size())) grow_ring(due - now_);
  ring_[static_cast<std::size_t>(due) & ring_mask_].push_back(ev);
}

void Network::grow_ring(Cycle min_horizon) {
  std::size_t size = ring_.empty() ? 2 : ring_.size();
  while (static_cast<Cycle>(size) <= min_horizon) size *= 2;
  std::vector<std::vector<Event>> fresh(size);
  if (!ring_.empty()) {
    const std::size_t old_mask = ring_mask_;
    for (std::size_t k = 1; k <= ring_.size(); ++k) {
      const auto t = static_cast<std::size_t>(now_) + k;
      fresh[t & (size - 1)] = std::move(ring_[t & old_mask]);
    }
  }
  ring_ = std::move(fresh);
  ring_mask_ = size - 1;
}

void Network::grow_tx_ring(Cycle min_horizon) {
  std::size_t size = tx_ring_.empty() ? 2 : tx_ring_.size();
  while (static_cast<Cycle>(size) <= min_horizon) size *= 2;
  std::vector<std::vector<std::int32_t>> fresh(size);
  if (!tx_ring_.empty()) {
    const std::size_t old_mask = tx_ring_mask_;
    // Bucket `now_` may hold same-cycle fires booked during the current
    // allocation phase, so unlike the event ring the copy starts at k=0.
    for (std::size_t k = 0; k < tx_ring_.size(); ++k) {
      const auto t = static_cast<std::size_t>(now_) + k;
      fresh[t & (size - 1)] = std::move(tx_ring_[t & old_mask]);
    }
  }
  tx_ring_ = std::move(fresh);
  tx_ring_mask_ = size - 1;
}

void Network::schedule_packet(RouterId router, PortId port, VcId vc,
                              PacketRef pkt, Cycle when) {
  Event ev;
  ev.when = when;
  ev.type = Event::Type::kPacket;
  ev.router = router;
  ev.port = port;
  ev.vc = vc;
  ev.pkt = pkt;
  push_event(when, ev);
}

void Network::schedule_credit(RouterId router, PortId out_port, VcId vc,
                              int phits, Cycle when) {
  Event ev;
  ev.when = when;
  ev.type = Event::Type::kCredit;
  ev.router = router;
  ev.port = out_port;
  ev.vc = vc;
  ev.phits = phits;
  push_event(when, ev);
}

void Network::schedule_delivery(PacketRef pkt, Cycle when) {
  Event ev;
  ev.when = when;
  ev.type = Event::Type::kDelivery;
  ev.pkt = pkt;
  push_event(when, ev);
}

void Network::schedule_port_ready(RouterId router, PortId port, Cycle when) {
  // Exact by construction: fires land at `now_` only from the allocation
  // phase (pipeline latency 0 with a free link), which the same cycle's
  // transmit phase consumes.
  const Cycle due = when < now_ ? now_ : when;
  if (due - now_ >= static_cast<Cycle>(tx_ring_.size())) {
    grow_tx_ring(due - now_);
  }
  tx_ring_[static_cast<std::size_t>(due) & tx_ring_mask_].push_back(
      router * hot_.layout().ports + port);
}

std::int64_t Network::generated_packets_total() const {
  std::int64_t sum = 0;
  for (const auto& node : nodes_) sum += node.generated_total();
  return sum;
}

std::int64_t Network::generated_packets_measured() const {
  std::int64_t sum = 0;
  for (const auto& node : nodes_) sum += node.generated_measured();
  return sum;
}

std::vector<std::int64_t> Network::injections_per_router() const {
  return collector_.injected_measured_per_router();
}

std::int64_t Network::total_forward_progress() const {
  return collector_.forwarded_total_sum();
}

std::vector<double> Network::measured_injection_counts() const {
  // Fairness over routers whose nodes generate traffic (all of them for
  // UN/ADV/ADVc; the placement pattern keeps outside routers silent).
  const std::vector<std::int64_t>& injected =
      collector_.injected_measured_per_router();
  std::vector<double> counts;
  counts.reserve(injected.size());
  for (RouterId r = 0; r < topo_->num_routers(); ++r) {
    bool any = false;
    for (int i = 0; i < topo_->concentration() && !any; ++i) {
      any = traffic_->generates(topo_->node_id(r, i));
    }
    if (any) {
      counts.push_back(
          static_cast<double>(injected[static_cast<std::size_t>(r)]));
    }
  }
  return counts;
}

void Network::set_offered_load(double load) {
  if (load < 0.0 || load > static_cast<double>(cfg_.packet_size)) {
    throw std::invalid_argument("set_offered_load: load out of range");
  }
  cfg_.load = load;
  for (auto& node : nodes_) node.set_offered_load(load, cfg_.packet_size);
}

void Network::set_traffic(const std::string& registry_name) {
  cfg_.traffic_name = traffic_registry().resolve(registry_name);
  traffic_ = make_traffic(*topo_, cfg_);
  for (auto& node : nodes_) node.set_pattern(traffic_.get());
  rebuild_node_masks();
}

void Network::save(CheckpointWriter& ck) const {
  ck.tag("Network");
  // Live scenario selection first: scripted phases may have moved it
  // away from the constructor config, and load() must re-apply it
  // before node state lands.
  ck.f64(cfg_.load);
  ck.str(cfg_.traffic_key());
  ck.boolean(generation_enabled_);
  ck.i64(now_);
  ck.i64(dispatched_events_);
  // Event ring, in dispatch order from the current cycle. Every pending
  // event is due within ring_.size() cycles of now_ by construction.
  // The transmit calendar is *not* serialized: it is derived state,
  // rebuilt from the output queues on load (rebuild_activation), which
  // also makes checkpoint streams kernel-independent.
  std::uint64_t pending = 0;
  for (const auto& bucket : ring_) pending += bucket.size();
  ck.u64(pending);
  for (std::size_t k = 0; k < ring_.size(); ++k) {
    const auto t = static_cast<std::size_t>(now_) + k;
    for (const Event& ev : ring_[t & ring_mask_]) {
      ck.i64(ev.when);
      ck.u8(static_cast<std::uint8_t>(ev.type));
      ck.i32(ev.router);
      ck.i32(ev.port);
      ck.i32(ev.vc);
      ck.i32(ev.phits);
      ck.i32(ev.pkt);
    }
  }
  store_.save(ck);
  collector_.save(ck);
  hot_.save(ck);
  for (const auto& router : routers_) router->save(ck);
  for (const auto& node : nodes_) node.save(ck);
}

void Network::load(CheckpointReader& ck) {
  ck.tag("Network");
  const double load = ck.f64();
  const std::string traffic = ck.str();
  if (traffic != cfg_.traffic_key()) set_traffic(traffic);
  set_offered_load(load);
  generation_enabled_ = ck.boolean();
  now_ = ck.i64();
  dispatched_events_ = ck.i64();
  const std::uint64_t pending = ck.u64();
  for (auto& bucket : ring_) bucket.clear();
  for (std::uint64_t i = 0; i < pending; ++i) {
    Event ev;
    ev.when = ck.i64();
    ev.type = static_cast<Event::Type>(ck.u8());
    ev.router = ck.i32();
    ev.port = ck.i32();
    ev.vc = ck.i32();
    ev.phits = ck.i32();
    ev.pkt = ck.i32();
    if (ev.when < now_ || ev.when - now_ >= static_cast<Cycle>(ring_.size())) {
      // The save-side ring always spans its pending events; a fresh
      // network of the same config sizes the ring identically, so this
      // only trips on a corrupt stream.
      throw std::runtime_error("checkpoint: event outside ring horizon");
    }
    // Direct placement preserves the saved dispatch order (push_event
    // would clamp events already due this cycle into the next one).
    ring_[static_cast<std::size_t>(ev.when) & ring_mask_].push_back(ev);
  }
  store_.load(ck);
  collector_.load(ck);
  hot_.load(ck);
  for (auto& router : routers_) router->load(ck);
  for (auto& node : nodes_) node.load(ck);
  // Re-derive the activation caches (alloc set, node masks, transmit
  // calendar) from the restored authoritative state.
  rebuild_activation();
}

}  // namespace dragonfly
