// Steppable simulation sessions: the phase-driven lifecycle every run
// goes through (Engine is a thin compatibility shim over this).
//
// A Session owns one Network and drives it through an explicit machine
//
//   Warmup -> Measure -> Drain -> Done
//
// with three ways to end the Measure phase:
//   * fixed window  — exactly measure_cycles (the paper's Sec. IV-A
//     methodology; bit-identical to the pre-Session Engine::run());
//   * adaptive stop — stop.mode=ci: batch-means confidence intervals on
//     accepted load and latency, measurement ends at the first batch
//     boundary where both relative half-widths fall under stop.rel_hw
//     (measure_cycles caps the window);
//   * phase script  — user-defined scripted segments (`phases` key)
//     that mutate offered load / traffic at cycle boundaries while one
//     measurement window spans them all.
//
// Observability is push-based: attach a MetricTap and the session emits
// a StreamSample every stream.interval cycles plus phase-transition
// callbacks. checkpoint()/restore() serialize the complete mutable
// state (RNG streams, queues, event ring, metrics), so a restored run
// continues bit-identically.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "metrics/fairness.hpp"
#include "metrics/latency.hpp"
#include "metrics/tap.hpp"
#include "sim/config.hpp"
#include "sim/network.hpp"

namespace dragonfly {

/// Per-job slice of a SimResult (workload modes; see JobRecord).
struct JobResult {
  std::int32_t id = -1;
  std::string label;          ///< traffic mix or collective name
  std::int32_t nodes = 0;
  Cycle start = 0;
  Cycle end = -1;             ///< -1 = still live when collected
  std::int64_t delivered_packets = 0;
  /// Delivered phits/(job node * cycle) over the overlap of the job's
  /// lifetime with the measurement window.
  double accepted_load = 0.0;
  double avg_latency = 0.0;
  double p99_latency = 0.0;
  double max_latency = 0.0;
  std::int64_t iterations = 0;          ///< collective iterations, window
  double mean_iteration_cycles = 0.0;   ///< mean completion time
};

/// Results of one simulation run at one offered load.
struct SimResult {
  double offered_load = 0.0;   ///< configured phits/(node*cycle)
  double accepted_load = 0.0;  ///< delivered phits/(node*cycle), window
  double avg_latency = 0.0;    ///< cycles, packets delivered in window
  double p50_latency = 0.0;
  double p99_latency = 0.0;
  double max_latency = 0.0;
  LatencyComponents components;
  double avg_local_hops = 0.0;
  double avg_global_hops = 0.0;
  std::int64_t delivered_packets = 0;
  std::int64_t generated_packets = 0;
  /// Injected packets per router during the window (all routers).
  std::vector<std::int64_t> injections_per_router;
  FairnessReport fairness;  ///< over all routers with generating nodes
  /// Length of the closed measurement window; under stop.mode=ci this
  /// is where the run actually stopped (0 if never measured).
  Cycle measured_cycles = 0;
  /// True when stop.mode=ci ended the window early because the CIs
  /// converged (always false in fixed mode).
  bool converged = false;

  // --- workload metrics battery ------------------------------------------
  /// P² tail estimate over all measured deliveries.
  double p999_latency = 0.0;
  /// Headroom below saturation: max(0, (offered - accepted) / offered).
  double saturation_margin = 0.0;
  /// Jain fairness across per-job accepted loads (0 when no jobs).
  double jain_jobs = 0.0;
  /// Jain fairness across per-group measured injection sums.
  double jain_groups = 0.0;
  /// One entry per workload job (empty outside workload modes).
  std::vector<JobResult> jobs;
};

class Session {
 public:
  explicit Session(const SimConfig& cfg);

  /// Build over a pre-constructed shared topology (see
  /// Network::Network(cfg, topo)); nullptr builds a private one. The
  /// sweep service passes TopologyCache entries here so concurrent
  /// sessions on one shape share the wiring and oracle tables.
  Session(const SimConfig& cfg, std::shared_ptr<const Topology> topo);

  // --- phase machine --------------------------------------------------------
  SessionPhase phase() const { return phase_; }
  /// Active scripted segment name ("" outside scripted segments).
  const std::string& segment() const;
  Cycle now() const { return net_.now(); }
  bool converged() const { return converged_; }

  /// Advance up to `n` cycles, crossing phase boundaries as they come
  /// (measurement begins/ends, scripted mutations apply, batch CIs are
  /// tested, stream samples fire). Stops early when the session reaches
  /// Done.
  void step(Cycle n = 1);

  /// Run until the session has *entered* `target` (no-op when already
  /// at or past it).
  void advance_to(SessionPhase target);

  /// Drive the machine to Done and collect.
  SimResult run();

  /// Extract results. Before any measurement this returns a well-defined
  /// empty result (offered load + zeroed metrics); mid-measurement the
  /// latency aggregates are partial and accepted load reads 0 until the
  /// window closes.
  SimResult collect() const;

  // --- streaming ------------------------------------------------------------
  /// Attach (or detach with nullptr) the streaming observer; samples
  /// fire every cfg.stream_interval cycles starting from the current
  /// cycle.
  void set_tap(MetricTap* tap);

  // --- raw access -----------------------------------------------------------
  /// Advance exactly `cycles` cycles with the deadlock watchdog but *no*
  /// phase logic — the Engine-compat escape hatch for custom loops that
  /// call begin/end_measurement themselves.
  void step_raw(Cycle cycles);

  Network& network() { return net_; }
  const Network& network() const { return net_; }
  const SimConfig& config() const { return cfg_; }

  /// Inject the runner used for sharded stepping (sim.shards > 1);
  /// pass-through to Network::set_runner. Not owned; nullptr reverts to
  /// the network's internal pool.
  void set_runner(ParallelRunner* runner) { net_.set_runner(runner); }

  // --- checkpoint / restore -------------------------------------------------
  /// Serialize config + full mutable state. The stream restores to a
  /// session that continues bit-identically (same RNG draws, same event
  /// order, same final SimResult). The format (v4) is shard-partition-
  /// independent: `shards_override` > 0 restores under that shard count
  /// instead of the one embedded at save time — still bit-identical,
  /// so a run can be checkpointed on a laptop at sim.shards=1 and
  /// resumed on a many-core box at sim.shards=8 (or vice versa).
  /// `refine`, when non-null, is a *warm-start refinement*: the restored
  /// session adopts the refinement keys (measurement window, stop rule,
  /// drain cap, stream interval, kernel/shards/paranoid — see
  /// SimConfig::refinement_key) from `refine` while keeping the
  /// checkpoint's physical config. Every non-refinement knob must match
  /// the embedded config's canonical form; any mismatch throws
  /// std::runtime_error carrying SimConfig::warm_incompatibility's
  /// diagnostic, so a service can never silently resume a checkpoint
  /// into a physically different experiment. `topo` optionally supplies
  /// the shared topology for the rebuilt network (nullptr = private).
  void checkpoint(std::ostream& os) const;
  void checkpoint_file(const std::string& path) const;
  static std::unique_ptr<Session> restore(
      std::istream& is, int shards_override = 0,
      const SimConfig* refine = nullptr,
      std::shared_ptr<const Topology> topo = nullptr);
  static std::unique_ptr<Session> restore_file(const std::string& path,
                                               int shards_override = 0);

 private:
  void check_progress();
  void step_impl(Cycle n, bool stop_on_transition);
  void arm_phase();
  void transition(SessionPhase to);
  void enter_measure();
  void enter_segment(std::size_t index);
  void close_batch();
  bool intervals_converged() const;
  void emit_sample();

  SimConfig cfg_;
  Network net_;

  // Phase machine. Deadlines are armed lazily on the first step() inside
  // a phase, so raw pre-stepping (Engine::run_cycles before run()) keeps
  // the legacy "warmup counts from here" semantics.
  SessionPhase phase_ = SessionPhase::kWarmup;
  bool phase_armed_ = false;
  Cycle phase_end_ = 0;
  std::size_t seg_index_ = 0;
  Cycle seg_end_ = 0;
  Cycle measure_begin_ = 0;
  bool converged_ = false;

  // Batch means (stop.mode=ci).
  Cycle batch_end_ = 0;
  std::int64_t batch_start_phits_ = 0;
  std::int64_t batch_start_packets_ = 0;
  double batch_start_lat_sum_ = 0.0;
  std::vector<double> batch_accepted_;
  std::vector<double> batch_latency_;

  // Streaming.
  MetricTap* tap_ = nullptr;
  Cycle next_sample_ = 0;
  Cycle sample_begin_ = 0;
  std::int64_t sample_start_packets_ = 0;
  std::int64_t sample_start_phits_ = 0;
  double sample_start_lat_sum_ = 0.0;

  // Deadlock watchdog (see step_raw).
  Cycle last_watchdog_check_ = 0;
  std::int64_t last_events_ = -1;
  std::int64_t last_progress_ = -1;
  std::size_t last_live_ = 0;
};

}  // namespace dragonfly
