// Workload layer: structured traffic above the per-node Bernoulli
// sources (see DESIGN.md "Workload layer").
//
// Three modes, selected by `workload.mode`:
//
//   collective — dependency-stepped collective generators (ring/tree
//     allreduce, all-to-all, halo exchange). The first
//     `workload.participants` nodes form the communicator; every other
//     node is silent. Sends are directed (Node::post_send, bypassing
//     the Bernoulli gate) and gated on per-rank receive counts, so the
//     traffic has the data-dependent burst structure real collectives
//     exhibit. Completion time of every iteration is recorded.
//
//   bursty — ON-OFF Markov modulation layered over the configured
//     traffic pattern: each node alternates geometric ON/OFF dwells
//     (means workload.burst_cycles / workload.idle_cycles) from its own
//     deterministic RNG stream, toggling the Node workload gate.
//
//   churn — a multi-tenant job model: jobs arrive (geometric
//     inter-arrival gaps), get a contiguous or random set of routers, a
//     traffic mix from the `workload.mix` list and a sampled lifetime,
//     then depart. Every packet carries its job id so the collector
//     attributes accepted load and latency per tenant.
//
// The driver is stepped SERIALLY at the top of Network::step(), right
// after the (equally serial) delivery drain that feeds it per-delivery
// notifications in canonical order. All of its RNG streams are children
// of the root seed, disjoint from node (n) and router (0x1000000+r)
// streams — so results are bit-identical for any kernel, thread or
// shard count, which the workload conformance tests assert.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "router/packet.hpp"
#include "sim/config.hpp"
#include "traffic/pattern.hpp"

namespace dragonfly {

class Network;
class CheckpointWriter;
class CheckpointReader;

/// Bound to nodes outside any live job (churn mode): never generates.
/// Owned by the driver so departed jobs leave no dangling pattern
/// pointers behind.
class NullPattern final : public TrafficPattern {
 public:
  std::string name() const override { return "workload-idle"; }
  NodeId destination(NodeId /*src*/, Rng& /*rng*/) const override {
    return kInvalidNode;
  }
  bool generates(NodeId /*src*/) const override { return false; }
};

/// Per-job traffic pattern: a named mix mapped onto the job's node list
/// in rank space (rank = index in the sorted node list), so the same
/// mix names mean the same communication structure regardless of where
/// the scheduler placed the job:
///   uniform — uniform over the other job nodes;
///   ring    — rank r -> rank (r+1) mod P;
///   shift   — rank r -> rank (r + P/2) mod P (fixed permutation);
///   hotspot — 20% of packets to rank 0, the rest uniform.
class JobPattern final : public TrafficPattern {
 public:
  JobPattern(std::string mix, std::vector<NodeId> nodes);

  std::string name() const override { return "job-" + mix_; }
  NodeId destination(NodeId src, Rng& rng) const override;
  bool generates(NodeId src) const override;

 private:
  /// Rank of `src` in the sorted node list, or -1 when outside the job.
  std::int32_t rank_of(NodeId src) const;

  std::string mix_;
  std::vector<NodeId> nodes_;  ///< sorted ascending
};

/// The workload subsystem driver. One per Network (constructed only
/// when cfg.workload.enabled()); stepped serially once per cycle.
class WorkloadDriver {
 public:
  /// `root` is the Rng(cfg.seed) root generator; the driver derives its
  /// streams as children disjoint from node and router streams.
  WorkloadDriver(Network& net, Rng root);
  ~WorkloadDriver();

  /// Bind node gates/patterns for the configured mode and register the
  /// initial jobs with the collector. Called once by Network::build()
  /// after the nodes exist.
  void initialize();

  /// Serial per-cycle hook (top of Network::step, after the delivery
  /// drain): advance collective schedules, toggle bursty dwells,
  /// admit/retire churn jobs.
  void on_cycle(Cycle now, bool measuring);

  /// Serial delivery notification in canonical order (from
  /// Network::drain_deliveries): feeds the collective receive counters.
  void on_delivered(const Packet& pkt, Cycle when);

  /// Stable accepted-load denominator for this workload, replacing the
  /// instantaneous generating-node count (which is 0 for collectives
  /// and fluctuates under bursty modulation / job churn): collective =
  /// participants, bursty = nodes the wrapped pattern generates on,
  /// churn = all nodes.
  int accepted_denominator() const { return denominator_; }

  /// Live collective/churn iteration and job state (tests).
  std::int64_t iterations_completed() const { return iterations_completed_; }
  std::size_t live_jobs() const { return jobs_.size(); }

  /// Checkpoint the driver's mutable state (RNG streams, schedules,
  /// live jobs). Serialized BEFORE the node section of the v5 stream:
  /// load() re-binds job patterns so the nodes' generates() recompute
  /// sees the right pattern pointers.
  void save(CheckpointWriter& ck) const;
  void load(CheckpointReader& ck);

 private:
  enum class Mode : std::uint8_t { kCollective, kBursty, kChurn };

  /// One directed send of a collective schedule: issue `dst` once this
  /// rank's receive count reaches `threshold`.
  struct CollectiveSend {
    NodeId dst = kInvalidNode;
    std::int32_t threshold = 0;
  };

  /// One live churn job. Node list, pattern and router ownership are
  /// derived from the router set (rebuilt on checkpoint load).
  struct Job {
    std::int32_t id = -1;
    std::int32_t mix = 0;  ///< index into mixes_
    std::vector<RouterId> routers;
    std::vector<NodeId> nodes;
    Cycle start = 0;
    Cycle end = 0;
    std::unique_ptr<JobPattern> pattern;
  };

  void init_collective();
  void init_bursty();
  void init_churn();
  void build_send_lists();
  void step_collective(Cycle now, bool measuring);
  void step_bursty(Cycle now);
  void step_churn(Cycle now);
  bool admit_job(Cycle now);
  void retire_job(std::size_t index, Cycle now);
  void bind_job_nodes(Job& job);
  /// Geometric dwell with the given mean (support {1, 2, ...}).
  static Cycle sample_dwell(Rng& rng, Cycle mean);

  Network& net_;
  Rng root_;
  Mode mode_ = Mode::kCollective;
  int denominator_ = 0;
  std::int64_t iterations_completed_ = 0;
  NullPattern null_pattern_;

  // --- collective ---------------------------------------------------------
  int participants_ = 0;
  std::vector<std::vector<CollectiveSend>> sends_;  ///< per rank (derived)
  std::vector<std::int32_t> next_send_;
  std::vector<std::int32_t> recv_count_;
  std::int64_t expected_per_iter_ = 0;  ///< derived: total sends
  std::int64_t iter_delivered_ = 0;
  Cycle iter_start_ = 0;

  // --- bursty -------------------------------------------------------------
  std::vector<Rng> node_rng_;
  std::vector<std::uint8_t> node_on_;
  std::vector<Cycle> next_toggle_;

  // --- churn --------------------------------------------------------------
  Rng churn_rng_;
  Cycle next_arrival_ = 0;
  std::int32_t next_job_id_ = 0;
  int job_routers_ = 0;  ///< resolved (0 in the config = one group)
  std::vector<std::string> mixes_;
  std::vector<Job> jobs_;
  std::vector<std::int32_t> router_job_;  ///< owning job id, -1 = free
};

}  // namespace dragonfly
