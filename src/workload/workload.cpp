#include "workload/workload.hpp"

#include <algorithm>
#include <array>
#include <cmath>

#include "common/checkpoint.hpp"
#include "sim/network.hpp"

namespace dragonfly {

// --- JobPattern -------------------------------------------------------------

JobPattern::JobPattern(std::string mix, std::vector<NodeId> nodes)
    : mix_(std::move(mix)), nodes_(std::move(nodes)) {
  std::sort(nodes_.begin(), nodes_.end());
}

std::int32_t JobPattern::rank_of(NodeId src) const {
  const auto it = std::lower_bound(nodes_.begin(), nodes_.end(), src);
  if (it == nodes_.end() || *it != src) return -1;
  return static_cast<std::int32_t>(it - nodes_.begin());
}

bool JobPattern::generates(NodeId src) const { return rank_of(src) >= 0; }

NodeId JobPattern::destination(NodeId src, Rng& rng) const {
  const std::int32_t r = rank_of(src);
  const auto P = static_cast<std::int32_t>(nodes_.size());
  if (r < 0 || P < 2) return kInvalidNode;
  if (mix_ == "ring") {
    return nodes_[static_cast<std::size_t>((r + 1) % P)];
  }
  if (mix_ == "shift") {
    return nodes_[static_cast<std::size_t>((r + P / 2) % P)];
  }
  if (mix_ == "hotspot" && r != 0 && rng.bernoulli(0.2)) {
    return nodes_.front();
  }
  // Uniform over the other job nodes (also the hotspot background and
  // the rank-0 hotspot source).
  auto j = static_cast<std::int32_t>(
      rng.below(static_cast<std::uint64_t>(P - 1)));
  if (j >= r) ++j;
  return nodes_[static_cast<std::size_t>(j)];
}

// --- WorkloadDriver ---------------------------------------------------------

namespace {
/// Child-stream index bases, disjoint from nodes (n) and routers
/// (0x1000000 + r).
constexpr std::uint64_t kBurstyStreamBase = 0x2000000ull;
constexpr std::uint64_t kChurnStream = 0x3000000ull;
}  // namespace

WorkloadDriver::WorkloadDriver(Network& net, Rng root)
    : net_(net), root_(root) {
  const std::string& m = net_.config().workload.mode;
  mode_ = m == "collective" ? Mode::kCollective
          : m == "bursty"   ? Mode::kBursty
                            : Mode::kChurn;
}

WorkloadDriver::~WorkloadDriver() = default;

Cycle WorkloadDriver::sample_dwell(Rng& rng, Cycle mean) {
  if (mean <= 1) return 1;
  const double u = rng.uniform();
  const double p = 1.0 / static_cast<double>(mean);
  // Geometric number of trials (support {1, 2, ...}, mean `mean`).
  const double g = std::floor(std::log1p(-u) / std::log1p(-p)) + 1.0;
  if (!(g >= 1.0)) return 1;
  if (g >= 1e15) return static_cast<Cycle>(1e15);
  return static_cast<Cycle>(g);
}

void WorkloadDriver::initialize() {
  switch (mode_) {
    case Mode::kCollective: init_collective(); break;
    case Mode::kBursty: init_bursty(); break;
    case Mode::kChurn: init_churn(); break;
  }
}

void WorkloadDriver::on_cycle(Cycle now, bool measuring) {
  switch (mode_) {
    case Mode::kCollective: step_collective(now, measuring); break;
    case Mode::kBursty: step_bursty(now); break;
    case Mode::kChurn: step_churn(now); break;
  }
}

void WorkloadDriver::on_delivered(const Packet& pkt, Cycle /*when*/) {
  if (mode_ != Mode::kCollective || pkt.job != 0) return;
  if (pkt.dst >= 0 && pkt.dst < participants_) {
    ++recv_count_[static_cast<std::size_t>(pkt.dst)];
    ++iter_delivered_;
  }
}

// --- collective -------------------------------------------------------------

void WorkloadDriver::init_collective() {
  const WorkloadConfig& w = net_.config().workload;
  participants_ = w.participants == 0 ? net_.num_nodes() : w.participants;
  denominator_ = participants_;
  // The communicator is ranks 0..P-1 mapped onto the first P nodes;
  // every node's Bernoulli source is parked (collective sends are the
  // only traffic, so completion times are unpolluted).
  for (NodeId n = 0; n < net_.num_nodes(); ++n) {
    Node& node = net_.node(n);
    node.set_workload_on(false);
    node.set_job(n < participants_ ? 0 : -1);
  }
  build_send_lists();
  next_send_.assign(static_cast<std::size_t>(participants_), 0);
  recv_count_.assign(static_cast<std::size_t>(participants_), 0);
  iter_delivered_ = 0;
  iter_start_ = 0;
  net_.collector().on_job_start(0, w.collective, participants_, 0);
  net_.rebuild_node_masks();
}

void WorkloadDriver::build_send_lists() {
  const int P = participants_;
  sends_.assign(static_cast<std::size_t>(P), {});
  expected_per_iter_ = 0;
  if (P < 2) return;
  const std::string& kind = net_.config().workload.collective;
  if (kind == "ring") {
    // Ring allreduce: 2(P-1) steps around the ring; rank r issues its
    // step-s packet to the right neighbour once it has received s
    // packets from the left (the data dependency of reduce-scatter +
    // allgather).
    const int steps = 2 * (P - 1);
    for (int r = 0; r < P; ++r) {
      auto& list = sends_[static_cast<std::size_t>(r)];
      list.reserve(static_cast<std::size_t>(steps));
      for (int s = 0; s < steps; ++s) {
        list.push_back({static_cast<NodeId>((r + 1) % P), s});
      }
    }
  } else if (kind == "tree") {
    // Binary-tree allreduce: reduce to the root (send to parent after
    // hearing from both children), then broadcast back down (after
    // additionally hearing from the parent).
    for (int r = 0; r < P; ++r) {
      auto& list = sends_[static_cast<std::size_t>(r)];
      const int c1 = 2 * r + 1;
      const int c2 = 2 * r + 2;
      const int nc = (c1 < P ? 1 : 0) + (c2 < P ? 1 : 0);
      if (r != 0) list.push_back({static_cast<NodeId>((r - 1) / 2), nc});
      const int bt = r == 0 ? nc : nc + 1;
      if (c1 < P) list.push_back({static_cast<NodeId>(c1), bt});
      if (c2 < P) list.push_back({static_cast<NodeId>(c2), bt});
    }
  } else if (kind == "alltoall") {
    // Personalized all-to-all: P-1 sends per rank in the classic
    // rotated order (step j targets rank r+j), paced one per cycle and
    // by source-queue backpressure.
    for (int r = 0; r < P; ++r) {
      auto& list = sends_[static_cast<std::size_t>(r)];
      list.reserve(static_cast<std::size_t>(P - 1));
      for (int j = 1; j < P; ++j) {
        list.push_back({static_cast<NodeId>((r + j) % P), 0});
      }
    }
  } else {  // halo
    // Halo exchange on a periodic rows x cols grid (rows = largest
    // divisor of P below sqrt(P)): each rank sends one halo to each
    // distinct grid neighbour per iteration.
    int rows = 1;
    for (int d = 1; d * d <= P; ++d) {
      if (P % d == 0) rows = d;
    }
    const int cols = P / rows;
    for (int r = 0; r < P; ++r) {
      const int x = r % cols;
      const int y = r / cols;
      const std::array<int, 4> neighbours = {
          y * cols + (x + 1) % cols, y * cols + (x - 1 + cols) % cols,
          ((y + 1) % rows) * cols + x, ((y - 1 + rows) % rows) * cols + x};
      auto& list = sends_[static_cast<std::size_t>(r)];
      for (const int nb : neighbours) {
        if (nb == r) continue;
        const auto dst = static_cast<NodeId>(nb);
        const bool dup =
            std::any_of(list.begin(), list.end(),
                        [dst](const CollectiveSend& s) { return s.dst == dst; });
        if (!dup) list.push_back({dst, 0});
      }
    }
  }
  for (const auto& list : sends_) {
    expected_per_iter_ += static_cast<std::int64_t>(list.size());
  }
}

void WorkloadDriver::step_collective(Cycle now, bool measuring) {
  // Iteration boundary first: the deliveries drained just before this
  // hook may have completed the iteration, and the new iteration's
  // step-0 sends should go out this very cycle.
  if (expected_per_iter_ > 0 && iter_delivered_ >= expected_per_iter_) {
    net_.collector().on_iteration(0, now - iter_start_);
    ++iterations_completed_;
    std::fill(next_send_.begin(), next_send_.end(), 0);
    std::fill(recv_count_.begin(), recv_count_.end(), 0);
    iter_delivered_ = 0;
    iter_start_ = now;
  }
  // One send attempt per rank per cycle, ascending rank order (the
  // canonical order). A full source queue is backpressure: the same
  // send retries next cycle.
  for (int r = 0; r < participants_; ++r) {
    const auto& list = sends_[static_cast<std::size_t>(r)];
    std::int32_t& next = next_send_[static_cast<std::size_t>(r)];
    if (next >= static_cast<std::int32_t>(list.size())) continue;
    const CollectiveSend& s = list[static_cast<std::size_t>(next)];
    if (recv_count_[static_cast<std::size_t>(r)] < s.threshold) continue;
    if (net_.workload_post_send(static_cast<NodeId>(r), s.dst, measuring, 0)) {
      ++next;
    }
  }
}

// --- bursty -----------------------------------------------------------------

void WorkloadDriver::init_bursty() {
  const WorkloadConfig& w = net_.config().workload;
  const int N = net_.num_nodes();
  node_rng_.reserve(static_cast<std::size_t>(N));
  node_on_.reserve(static_cast<std::size_t>(N));
  next_toggle_.reserve(static_cast<std::size_t>(N));
  denominator_ = 0;
  const double duty = static_cast<double>(w.burst_cycles) /
                      static_cast<double>(w.burst_cycles + w.idle_cycles);
  for (NodeId n = 0; n < N; ++n) {
    if (net_.node(n).generates()) ++denominator_;
    node_rng_.push_back(root_.child(kBurstyStreamBase +
                                    static_cast<std::uint64_t>(n)));
    Rng& rng = node_rng_.back();
    // Stationary initial phase: ON with probability burst/(burst+idle),
    // then a full dwell of the initial state.
    const bool on = rng.bernoulli(duty);
    node_on_.push_back(on ? 1 : 0);
    next_toggle_.push_back(
        sample_dwell(rng, on ? w.burst_cycles : w.idle_cycles));
    if (!on) net_.node(n).set_workload_on(false);
  }
  net_.rebuild_node_masks();
}

void WorkloadDriver::step_bursty(Cycle now) {
  const WorkloadConfig& w = net_.config().workload;
  for (NodeId n = 0; n < net_.num_nodes(); ++n) {
    const auto i = static_cast<std::size_t>(n);
    if (next_toggle_[i] != now) continue;
    node_on_[i] ^= 1u;
    const bool on = node_on_[i] != 0;
    net_.node(n).set_workload_on(on);
    net_.refresh_node_activation(n);
    next_toggle_[i] =
        now + sample_dwell(node_rng_[i], on ? w.burst_cycles : w.idle_cycles);
  }
}

// --- churn ------------------------------------------------------------------

void WorkloadDriver::init_churn() {
  const WorkloadConfig& w = net_.config().workload;
  const Topology& topo = net_.topology();
  churn_rng_ = root_.child(kChurnStream);
  mixes_ = workload_mix_entries(w.mix);
  job_routers_ = w.job_routers > 0
                     ? w.job_routers
                     : topo.num_routers() / topo.num_groups();
  router_job_.assign(static_cast<std::size_t>(topo.num_routers()), -1);
  denominator_ = net_.num_nodes();
  // Everything idle until a job claims it.
  for (NodeId n = 0; n < net_.num_nodes(); ++n) {
    Node& node = net_.node(n);
    node.set_pattern(&null_pattern_);
    node.set_job(-1);
    node.set_workload_on(false);
  }
  next_arrival_ = sample_dwell(churn_rng_, w.arrival_cycles);
  net_.rebuild_node_masks();
}

void WorkloadDriver::bind_job_nodes(Job& job) {
  const Topology& topo = net_.topology();
  std::sort(job.routers.begin(), job.routers.end());
  job.nodes.clear();
  for (const RouterId r : job.routers) {
    for (int i = 0; i < topo.concentration(); ++i) {
      job.nodes.push_back(topo.node_id(r, i));
    }
    router_job_[static_cast<std::size_t>(r)] = job.id;
  }
  std::sort(job.nodes.begin(), job.nodes.end());
  job.pattern = std::make_unique<JobPattern>(
      mixes_[static_cast<std::size_t>(job.mix)], job.nodes);
  for (const NodeId n : job.nodes) {
    net_.node(n).set_pattern(job.pattern.get());
  }
}

bool WorkloadDriver::admit_job(Cycle now) {
  const WorkloadConfig& w = net_.config().workload;
  const int R = net_.num_routers();
  const int need = std::min(job_routers_, R);
  Job job;
  job.id = next_job_id_;
  job.mix = static_cast<std::int32_t>(
      static_cast<std::size_t>(next_job_id_) % mixes_.size());
  if (w.placement == "contiguous") {
    // First-fit run of `need` consecutive free routers. No RNG draw on
    // the placement, and none at all when fragmentation defers the
    // job — the retry next cycle sees the identical stream.
    int run = 0;
    for (RouterId r = 0; r < R; ++r) {
      run = router_job_[static_cast<std::size_t>(r)] < 0 ? run + 1 : 0;
      if (run == need) {
        for (RouterId k = r - need + 1; k <= r; ++k) job.routers.push_back(k);
        break;
      }
    }
    if (job.routers.empty()) return false;
  } else {  // random
    std::vector<RouterId> free;
    for (RouterId r = 0; r < R; ++r) {
      if (router_job_[static_cast<std::size_t>(r)] < 0) free.push_back(r);
    }
    if (static_cast<int>(free.size()) < need) return false;
    // Partial Fisher-Yates over the free list (ascending, so the draw
    // sequence is placement-history independent).
    for (int k = 0; k < need; ++k) {
      const auto j = static_cast<std::size_t>(k) +
                     static_cast<std::size_t>(churn_rng_.below(
                         free.size() - static_cast<std::size_t>(k)));
      std::swap(free[static_cast<std::size_t>(k)], free[j]);
      job.routers.push_back(free[static_cast<std::size_t>(k)]);
    }
  }
  job.start = now;
  job.end = now + sample_dwell(churn_rng_, w.job_cycles);
  bind_job_nodes(job);
  for (const NodeId n : job.nodes) {
    Node& node = net_.node(n);
    node.set_job(job.id);
    node.set_workload_on(true);
    net_.refresh_node_activation(n);
  }
  net_.collector().on_job_start(
      job.id, mixes_[static_cast<std::size_t>(job.mix)],
      static_cast<int>(job.nodes.size()), now);
  ++next_job_id_;
  jobs_.push_back(std::move(job));
  return true;
}

void WorkloadDriver::retire_job(std::size_t index, Cycle now) {
  Job& job = jobs_[index];
  net_.collector().on_job_end(job.id, now);
  for (const NodeId n : job.nodes) {
    Node& node = net_.node(n);
    node.set_workload_on(false);
    node.set_job(-1);
    node.set_pattern(&null_pattern_);
    net_.refresh_node_activation(n);
  }
  for (const RouterId r : job.routers) {
    router_job_[static_cast<std::size_t>(r)] = -1;
  }
  jobs_.erase(jobs_.begin() + static_cast<std::ptrdiff_t>(index));
}

void WorkloadDriver::step_churn(Cycle now) {
  const WorkloadConfig& w = net_.config().workload;
  // Departures first so a same-cycle arrival can reuse the routers.
  for (std::size_t i = 0; i < jobs_.size();) {
    if (now >= jobs_[i].end) {
      retire_job(i, now);
    } else {
      ++i;
    }
  }
  // At most one pending arrival: when the cluster is full (or too
  // fragmented for a contiguous placement) the job waits at the door
  // and admission retries every cycle.
  if (now >= next_arrival_ &&
      jobs_.size() < static_cast<std::size_t>(w.jobs)) {
    if (admit_job(now)) {
      next_arrival_ = now + sample_dwell(churn_rng_, w.arrival_cycles);
    }
  }
}

// --- checkpoint -------------------------------------------------------------

void WorkloadDriver::save(CheckpointWriter& ck) const {
  ck.tag("Workload");
  ck.i64(iterations_completed_);
  switch (mode_) {
    case Mode::kCollective:
      // Send lists are derived from the config; only progress state is
      // mutable.
      ck.vec(next_send_, [&](std::int32_t v) { ck.i32(v); });
      ck.vec(recv_count_, [&](std::int32_t v) { ck.i32(v); });
      ck.i64(iter_delivered_);
      ck.i64(iter_start_);
      break;
    case Mode::kBursty:
      for (std::size_t i = 0; i < node_rng_.size(); ++i) {
        for (const std::uint64_t word : node_rng_[i].state()) ck.u64(word);
        ck.u8(node_on_[i]);
        ck.i64(next_toggle_[i]);
      }
      break;
    case Mode::kChurn: {
      for (const std::uint64_t word : churn_rng_.state()) ck.u64(word);
      ck.i64(next_arrival_);
      ck.i32(next_job_id_);
      ck.u32(static_cast<std::uint32_t>(jobs_.size()));
      for (const Job& job : jobs_) {
        ck.i32(job.id);
        ck.i32(job.mix);
        ck.vec(job.routers, [&](RouterId r) { ck.i32(r); });
        ck.i64(job.start);
        ck.i64(job.end);
      }
      break;
    }
  }
}

void WorkloadDriver::load(CheckpointReader& ck) {
  ck.tag("Workload");
  iterations_completed_ = ck.i64();
  switch (mode_) {
    case Mode::kCollective:
      ck.vec(next_send_, [&] { return ck.i32(); });
      ck.vec(recv_count_, [&] { return ck.i32(); });
      iter_delivered_ = ck.i64();
      iter_start_ = ck.i64();
      break;
    case Mode::kBursty:
      for (std::size_t i = 0; i < node_rng_.size(); ++i) {
        std::array<std::uint64_t, 4> state;
        for (std::uint64_t& word : state) word = ck.u64();
        node_rng_[i].set_state(state);
        node_on_[i] = ck.u8();
        next_toggle_[i] = ck.i64();
      }
      break;
    case Mode::kChurn: {
      std::array<std::uint64_t, 4> state;
      for (std::uint64_t& word : state) word = ck.u64();
      churn_rng_.set_state(state);
      next_arrival_ = ck.i64();
      next_job_id_ = ck.i32();
      const std::uint32_t n = ck.u32();
      jobs_.clear();
      std::fill(router_job_.begin(), router_job_.end(), -1);
      for (std::uint32_t i = 0; i < n; ++i) {
        Job job;
        job.id = ck.i32();
        job.mix = ck.i32();
        ck.vec(job.routers, [&] { return ck.i32(); });
        job.start = ck.i64();
        job.end = ck.i64();
        // Rebinds the job's pattern to its nodes — this is why the
        // driver section precedes the node section in the v5 stream:
        // Node::load re-derives generates() against these pointers.
        bind_job_nodes(job);
        jobs_.push_back(std::move(job));
      }
      break;
    }
  }
}

}  // namespace dragonfly
