#include "router/router.hpp"

#include <array>
#include <bit>
#include <cstdio>
#include <stdexcept>

#include "common/checkpoint.hpp"

namespace dragonfly {

namespace {
AllocatorConfig allocator_config(const SimConfig& cfg) {
  AllocatorConfig a;
  a.iterations = cfg.allocator_iterations;
  a.max_grants_per_input = cfg.max_grants_per_input;
  a.max_grants_per_output = cfg.max_grants_per_output;
  a.transit_priority = cfg.transit_priority;
  a.age_arbitration = cfg.age_arbitration;
  return a;
}
}  // namespace

Router::Router(const Topology& topo, const SimConfig& cfg,
               RouterId id, RoutingAlgorithm* routing, PacketStore* store,
               EventSink* sink, Rng rng, HotState* hot)
    : topo_(topo),
      cfg_(cfg),
      id_(id),
      routing_(routing),
      store_(store),
      sink_(sink),
      rng_(rng),
      inputs_(static_cast<std::size_t>(topo.ports_per_router())),
      outputs_(static_cast<std::size_t>(topo.ports_per_router())),
      allocator_(topo.ports_per_router(), topo.ports_per_router(),
                 allocator_config(cfg)) {
  if (hot != nullptr) {
    hot_ = hot;
    hot_row_ = id;
  } else {
    own_hot_ = std::make_unique<HotState>(HotLayout::make(topo, cfg), 1);
    hot_ = own_hot_.get();
    hot_row_ = 0;
  }
  requests_.reserve(64);
  decisions_.reserve(64);
}

// The VC-count / buffer-capacity rules live next to HotLayout::make
// (sim/hot_state.cpp) so the SoA slot spans and the wiring below can
// never drift apart.
int Router::input_buffer_capacity(PortKind kind) const {
  return input_buffer_capacity_for(cfg_, kind);
}

int Router::num_vcs_for_input(PortKind kind) const {
  return input_vcs_for(cfg_, kind);
}

int Router::num_vcs_for_output(PortKind kind) const {
  return output_vcs_for(cfg_, kind);
}

void Router::wire_output(PortId port, PortKind kind, RouterId peer,
                         PortId peer_port, Cycle link_latency) {
  const int vcs = num_vcs_for_output(kind);
  std::vector<int> credits(static_cast<std::size_t>(vcs));
  for (auto& c : credits) {
    // Ejection consumes at link rate with no backpressure: model as an
    // effectively unbounded credit pool.
    c = kind == PortKind::kEjection ? 1 << 28 : input_buffer_capacity(kind);
  }
  const HotLayout& l = hot_->layout();
  OutputHotSlots slots;
  slots.credits = hot_->credits(hot_row_) + l.out_vc_index(port, 0);
  slots.credit_capacity =
      hot_->credit_capacity(hot_row_) + l.out_vc_index(port, 0);
  slots.queue_occupancy = hot_->queue_occupancy(hot_row_) + port;
  slots.link_free = hot_->link_free(hot_row_) + port;
  outputs_[static_cast<std::size_t>(port)].configure(
      kind, peer, peer_port, link_latency, cfg_.output_queue_size,
      std::move(credits), slots);
}

void Router::wire_input(PortId port, PortKind kind, RouterId upstream,
                        PortId upstream_port, Cycle credit_latency) {
  InputPort& in = inputs_[static_cast<std::size_t>(port)];
  in.kind = kind;
  in.upstream_router = upstream;
  in.upstream_port = upstream_port;
  in.credit_latency = credit_latency;
  const int vcs = num_vcs_for_input(kind);
  const HotLayout& l = hot_->layout();
  in.vcs.clear();
  in.vcs.reserve(static_cast<std::size_t>(vcs));
  for (int v = 0; v < vcs; ++v) {
    const int flat = l.in_vc_index(port, v);
    in.vcs.emplace_back(input_buffer_capacity(kind),
                        hot_->in_occupancy(hot_row_) + flat,
                        hot_->in_head(hot_row_) + flat);
  }
}

void Router::bind_counters(std::int64_t* injected_total,
                           std::int64_t* injected_measured,
                           std::int64_t* forwarded_total) {
  injected_total_ = injected_total;
  injected_measured_ = injected_measured;
  forwarded_total_ = forwarded_total;
}

void Router::packet_arrival(PortId in_port, VcId vc, PacketRef ref,
                            Cycle now) {
  Packet& pkt = (*store_)[ref];
  const GroupId prev_group = topo_.group_of_router(pkt.current_router);
  pkt.current_router = id_;
  pkt.in_port = in_port;
  pkt.in_vc = vc;
  pkt.t_arrival = now;
  routing_->on_arrival(*this, pkt, prev_group);
  inputs_[static_cast<std::size_t>(in_port)].vcs[static_cast<std::size_t>(vc)]
      .push(ref, pkt.size_phits);
  set_in_mask(hot_->layout().in_vc_index(in_port, vc));
  ++buffered_packets_;
}

void Router::credit_arrival(PortId out_port, VcId vc, int phits) {
  outputs_[static_cast<std::size_t>(out_port)].return_credits(vc, phits);
}

bool Router::can_accept_injection(PortId inj_port, VcId vc, int phits) const {
  const InputPort& in = inputs_[static_cast<std::size_t>(inj_port)];
  return in.vcs[static_cast<std::size_t>(vc)].free_space() >= phits;
}

void Router::inject(PortId inj_port, VcId vc, PacketRef ref, Cycle now) {
  Packet& pkt = (*store_)[ref];
  pkt.current_router = id_;
  pkt.in_port = inj_port;
  pkt.in_vc = vc;
  // Sec. IV-B: the latency clock starts "the moment a flit is inserted
  // into the injection queue at the source router".
  pkt.t_net = now;
  pkt.t_arrival = now;
  inputs_[static_cast<std::size_t>(inj_port)].vcs[static_cast<std::size_t>(vc)]
      .push(ref, pkt.size_phits);
  set_in_mask(hot_->layout().in_vc_index(inj_port, vc));
  ++buffered_packets_;
}

void Router::allocate(Cycle now) {
  if (buffered_packets_ == 0) return;  // nothing to arbitrate
  requests_.clear();
  decisions_.clear();
  considered_.clear();

  // Walk only the non-empty input VCs: the per-router bitmask visits
  // them in flat (port, vc) order — the exact order of the old dense
  // port/VC scan — so requests, routing calls and RNG draws are
  // bit-identical to the dense kernel.
  const HotLayout& l = hot_->layout();
  const std::uint64_t* mask = hot_->in_mask(hot_row_);
  const PacketRef* heads = hot_->in_head(hot_row_);
  const std::int32_t* credits = hot_->credits(hot_row_);
  const std::int32_t* qocc = hot_->queue_occupancy(hot_row_);
  const int words = l.in_mask_words();
  const int inj_end = topo_.first_local_port();
  for (int w = 0; w < words; ++w) {
    std::uint64_t bits = mask[w];
    while (bits != 0) {
      const int flat = w * 64 + std::countr_zero(bits);
      bits &= bits - 1;
      const PortId in_port = l.port_of_in_vc[static_cast<std::size_t>(flat)];
      const VcId vc =
          static_cast<VcId>(flat - l.in_vc_off[static_cast<std::size_t>(
                                       in_port)]);
      const PacketRef head = heads[flat];
      Packet& pkt = (*store_)[head];
      considered_.push_back(head);
      const RoutingDecision d = routing_->route(*this, pkt);
      if (!d.valid()) continue;
      if (credits[l.out_vc_index(d.out_port, d.out_vc)] < pkt.size_phits) {
        continue;
      }
      if (qocc[d.out_port] + pkt.size_phits > cfg_.output_queue_size) continue;
      AllocRequest req;
      req.in_port = in_port;
      req.in_vc = vc;
      req.out_port = d.out_port;
      req.out_vc = d.out_vc;
      req.is_injection = in_port < inj_end;
      req.age = pkt.t_gen;
      requests_.push_back(req);
      decisions_.push_back(d);
    }
  }
  if (considered_.empty()) return;

  allocator_.allocate(requests_);

#ifdef DRAGONFLY_DEBUG_ALLOC
  if (id_ == 0) {
    int g = 0;
    for (const auto& r : requests_) g += r.granted ? 1 : 0;
    std::fprintf(stderr, "[r0 @%lld] req=%zu granted=%d\n", (long long)now,
                 requests_.size(), g);
    for (const auto& r : requests_) {
      std::fprintf(stderr, "   in=%d vc=%d -> out=%d ovc=%d inj=%d g=%d\n",
                   r.in_port, r.in_vc, r.out_port, r.out_vc,
                   (int)r.is_injection, (int)r.granted);
    }
  }
#endif

  // Denial feedback for opportunistic misrouting: every considered head
  // that did not move this cycle accumulates a denial; granted packets
  // were reset inside execute_grant *after* this pass would have run, so
  // increment first, then execute grants (which zero the counter).
  for (const PacketRef ref : considered_) ++(*store_)[ref].denied_cycles;

  for (std::size_t i = 0; i < requests_.size(); ++i) {
    if (requests_[i].granted) execute_grant(requests_[i], decisions_[i], now);
  }
}

void Router::execute_grant(const AllocRequest& req, const RoutingDecision& d,
                           Cycle now) {
  InputPort& in = inputs_[static_cast<std::size_t>(req.in_port)];
  VcFifo& fifo = in.vcs[static_cast<std::size_t>(req.in_vc)];
  const PacketRef ref = fifo.head();
  Packet& pkt = (*store_)[ref];

  // Requests are feasibility-checked when built, but two same-cycle grants
  // can race for the last credits / queue slot of one output. The loser
  // bounces and retries next cycle (speculative allocation).
  {
    const OutputPort& out = outputs_[static_cast<std::size_t>(d.out_port)];
    if (out.credits(d.out_vc) < pkt.size_phits ||
        !out.queue_has_space(pkt.size_phits)) {
      return;
    }
  }
  fifo.pop(pkt.size_phits);
  if (fifo.empty()) {
    clear_in_mask(hot_->layout().in_vc_index(req.in_port, req.in_vc));
  }
  --buffered_packets_;
  pkt.denied_cycles = 0;

  // Waiting time at this router's input, bucketed by queue class.
  const Cycle waited = now - pkt.t_arrival;
  switch (in.kind) {
    case PortKind::kInjection: pkt.wait_injection += waited; break;
    case PortKind::kLocal: pkt.wait_local += waited; break;
    case PortKind::kGlobal: pkt.wait_global += waited; break;
    case PortKind::kEjection: break;
  }

  // Return the freed buffer space upstream (injection has no credit loop:
  // the node observes free space directly).
  if (in.kind != PortKind::kInjection) {
    sink_->schedule_credit(in.upstream_router, in.upstream_port, req.in_vc,
                           pkt.size_phits, now + in.credit_latency);
  } else {
    ++*injected_total_;
    if (measuring_) ++*injected_measured_;
  }
  ++*forwarded_total_;

  routing_->on_grant(*this, pkt, d);

  OutputPort& out = outputs_[static_cast<std::size_t>(d.out_port)];
  pkt.structural += cfg_.pipeline_latency;
  switch (out.kind()) {
    case PortKind::kLocal:
      ++pkt.local_hops;
      pkt.structural += out.link_latency();
      break;
    case PortKind::kGlobal:
      ++pkt.global_hops;
      pkt.structural += out.link_latency();
      break;
    case PortKind::kEjection:
      break;
    case PortKind::kInjection:
      throw std::logic_error("granted to an injection output");
  }

  out.take_credits(d.out_vc, pkt.size_phits);
  out.enqueue(ref, d.out_vc, now + cfg_.pipeline_latency, pkt.size_phits);
  ++pending_tx_;
  if (event_tx_ && out.pending().size() == 1) {
    // The queue was empty, so no fire is outstanding for this port. The
    // head's wire time is exact: the pipeline-ready cycle, or the link
    // becoming free, whichever is later.
    sink_->schedule_port_ready(id_, d.out_port, out.next_fire());
  }
}

void Router::transmit(Cycle now) {
  if (pending_tx_ == 0) return;  // all output queues empty
  const int ports = topo_.ports_per_router();
  for (PortId port = 0; port < ports; ++port) {
    OutputPort& out = outputs_[static_cast<std::size_t>(port)];
    if (!out.can_transmit(now)) continue;
    transmit_due(port, now);
  }
}

void Router::transmit_due(PortId port, Cycle now) {
  OutputPort& out = outputs_[static_cast<std::size_t>(port)];
  const PendingTx head = out.queue_head();
  Packet& pkt = (*store_)[head.pkt];
  const PendingTx tx = out.begin_transmission(now, pkt.size_phits);
  --pending_tx_;

  // Waiting in the output queue for the link (serialization backlog):
  // congestion attributed to the link class being traversed.
  const Cycle qwait = now - tx.ready;
  switch (out.kind()) {
    case PortKind::kGlobal: pkt.wait_global += qwait; break;
    case PortKind::kLocal:
    case PortKind::kEjection: pkt.wait_local += qwait; break;
    case PortKind::kInjection: break;
  }

  if (out.kind() == PortKind::kEjection) {
    sink_->schedule_delivery(tx.pkt, now + pkt.size_phits);
  } else {
    sink_->schedule_packet(out.peer(), out.peer_port(), tx.out_vc, tx.pkt,
                           now + out.link_latency());
  }
  if (event_tx_ && !out.queue_empty()) {
    // Next head: ready is fixed since its grant, the link frees at
    // now + size — both known now, so the fire time is exact.
    sink_->schedule_port_ready(id_, port, out.next_fire());
  }
}

double Router::mean_local_occupancy() const {
  const int first = topo_.first_local_port();
  const int last = topo_.first_global_port();
  if (first == last) return 0.0;
  double sum = 0.0;
  for (PortId p = first; p < last; ++p) {
    sum += outputs_[static_cast<std::size_t>(p)].occupancy_fraction();
  }
  return sum / static_cast<double>(last - first);
}

double Router::mean_global_occupancy() const {
  const int first = topo_.first_global_port();
  const int last = topo_.ports_per_router();
  if (first == last) return 0.0;
  double sum = 0.0;
  for (PortId p = first; p < last; ++p) {
    sum += outputs_[static_cast<std::size_t>(p)].occupancy_fraction();
  }
  return sum / static_cast<double>(last - first);
}

void Router::save(CheckpointWriter& ck) const {
  ck.tag("Router");
  const auto rng_state = rng_.state();
  for (const std::uint64_t word : rng_state) ck.u64(word);
  for (const InputPort& in : inputs_) {
    ck.u64(in.vcs.size());
    for (const VcFifo& vc : in.vcs) vc.save(ck);
  }
  for (const OutputPort& out : outputs_) out.save(ck);
  allocator_.save(ck);
  ck.boolean(measuring_);
  ck.i32(buffered_packets_);
  ck.i32(pending_tx_);
  // A private HotState / private statistics counters (standalone
  // router) are not covered by a Network checkpoint: serialize them
  // inline. Network-owned routers carry both in the Network stream
  // (HotState block, collector counter arrays).
  if (own_hot_ != nullptr) {
    own_hot_->save(ck);
    ck.i64(*injected_measured_);
    ck.i64(*injected_total_);
    ck.i64(*forwarded_total_);
  }
}

void Router::load(CheckpointReader& ck) {
  ck.tag("Router");
  std::array<std::uint64_t, 4> rng_state;
  for (std::uint64_t& word : rng_state) word = ck.u64();
  rng_.set_state(rng_state);
  for (InputPort& in : inputs_) {
    if (ck.u64() != in.vcs.size()) {
      throw std::runtime_error(
          "checkpoint: input-port VC count mismatch (config drift)");
    }
    for (VcFifo& vc : in.vcs) vc.load(ck);
  }
  for (OutputPort& out : outputs_) out.load(ck);
  allocator_.load(ck);
  measuring_ = ck.boolean();
  buffered_packets_ = ck.i32();
  pending_tx_ = ck.i32();
  if (own_hot_ != nullptr) {
    own_hot_->load(ck);
    *injected_measured_ = ck.i64();
    *injected_total_ = ck.i64();
    *forwarded_total_ = ck.i64();
  }
  // Re-derive the non-empty-VC mask from the restored FIFOs (VcFifo::load
  // already refreshed the head slots).
  const HotLayout& l = hot_->layout();
  std::uint64_t* mask = hot_->in_mask(hot_row_);
  for (int w = 0; w < l.in_mask_words(); ++w) mask[w] = 0;
  for (PortId port = 0; port < l.ports; ++port) {
    const InputPort& in = inputs_[static_cast<std::size_t>(port)];
    for (VcId vc = 0; vc < static_cast<VcId>(in.vcs.size()); ++vc) {
      if (!in.vcs[static_cast<std::size_t>(vc)].empty()) {
        set_in_mask(l.in_vc_index(port, vc));
      }
    }
  }
}

}  // namespace dragonfly
