// Input-output-buffered high-radix router model (paper Sec. IV-A):
// 5-cycle pipeline, iterative separable batch allocator, 2x internal
// speedup, virtual cut-through, credit-based flow control.
//
// Hot state (credits, queue occupancies, link deadlines, input-VC
// occupancy/heads and the non-empty-VC bitmask) lives in a HotState
// structure-of-arrays owned by the Network; the router binds its row at
// construction. A router built without a shared HotState (unit tests)
// owns a private single-row instance — behaviour is identical.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "router/allocator.hpp"
#include "router/buffer.hpp"
#include "router/packet.hpp"
#include "routing/routing.hpp"
#include "sim/config.hpp"
#include "sim/hot_state.hpp"
#include "topology/topology.hpp"

namespace dragonfly {

class CheckpointWriter;
class CheckpointReader;

/// Where routers push cross-router events; implemented by Network.
class EventSink {
 public:
  virtual ~EventSink() = default;
  /// Packet head reaches `router`'s input (port, vc) at `when`.
  virtual void schedule_packet(RouterId router, PortId port, VcId vc,
                               PacketRef pkt, Cycle when) = 0;
  /// Credit for (out_port, vc) returns to `router` at `when`.
  virtual void schedule_credit(RouterId router, PortId out_port, VcId vc,
                               int phits, Cycle when) = 0;
  /// Packet tail reaches its destination node at `when`.
  virtual void schedule_delivery(PacketRef pkt, Cycle when) = 0;
  /// Event-driven transmit (sim.kernel=active): output (router, port)
  /// can put its queue head on the wire exactly at `when`. Only emitted
  /// after Router::set_event_driven_tx(true); the default ignores it so
  /// scan-kernel networks and test sinks need no handling.
  virtual void schedule_port_ready(RouterId router, PortId port, Cycle when) {
    (void)router;
    (void)port;
    (void)when;
  }
};

class Router {
 public:
  /// `hot` is the Network-owned SoA (row = `id`); nullptr makes the
  /// router own a private single-row HotState (standalone fixtures).
  Router(const Topology& topo, const SimConfig& cfg, RouterId id,
         RoutingAlgorithm* routing, PacketStore* store, EventSink* sink,
         Rng rng, HotState* hot = nullptr);

  RouterId id() const { return id_; }
  GroupId group() const { return topo_.group_of_router(id_); }
  const Topology& topology() const { return topo_; }
  const SimConfig& config() const { return cfg_; }
  Rng& rng() { return rng_; }
  PacketStore& packets() { return *store_; }

  // --- wiring (done once by Network) -------------------------------------
  void wire_output(PortId port, PortKind kind, RouterId peer, PortId peer_port,
                   Cycle link_latency);
  void wire_input(PortId port, PortKind kind, RouterId upstream,
                  PortId upstream_port, Cycle credit_latency);
  /// Route per-router statistics into the collector's contiguous counter
  /// arrays (standalone routers keep private fallbacks).
  void bind_counters(std::int64_t* injected_total,
                     std::int64_t* injected_measured,
                     std::int64_t* forwarded_total);
  /// sim.kernel=active: emit schedule_port_ready() fire times instead of
  /// relying on the per-cycle transmit() poll.
  void set_event_driven_tx(bool on) { event_tx_ = on; }

  // --- event handlers ------------------------------------------------------
  void packet_arrival(PortId in_port, VcId vc, PacketRef pkt, Cycle now);
  void credit_arrival(PortId out_port, VcId vc, int phits);

  // --- node-side injection ---------------------------------------------------
  bool can_accept_injection(PortId inj_port, VcId vc, int phits) const;
  void inject(PortId inj_port, VcId vc, PacketRef pkt, Cycle now);

  // --- per-cycle steps (called by Network) -----------------------------------
  void allocate(Cycle now);
  /// Dense-scan link transfer: poll every output port (sim.kernel=scan
  /// and standalone fixtures).
  void transmit(Cycle now);
  /// Event-driven link transfer: fire one output port whose
  /// schedule_port_ready() deadline is `now` (sim.kernel=active).
  void transmit_due(PortId port, Cycle now);
  /// Packets buffered in input VCs (the allocate active-set predicate).
  bool has_buffered() const { return buffered_packets_ > 0; }

  // --- congestion queries (used by adaptive routing) ---------------------------
  /// Combined (queue backlog + downstream reservation) congestion signal,
  /// used by PiggyBack's in-group link-state broadcast.
  double output_occupancy(PortId port) const {
    return outputs_[static_cast<std::size_t>(port)].occupancy_fraction();
  }
  /// Credit-count signal the in-transit adaptive mechanisms consult: the
  /// reserved fraction of the downstream buffer of one VC.
  double output_vc_occupancy(PortId port, VcId vc) const {
    return outputs_[static_cast<std::size_t>(port)].vc_occupancy_fraction(vc);
  }
  bool output_congested(PortId port, VcId vc) const {
    return output_vc_occupancy(port, vc) > cfg_.intransit_threshold;
  }
  /// True when the downstream VC buffer cannot take one more packet — the
  /// opportunistic misrouting trigger (the packet literally cannot
  /// advance minimally).
  bool credits_exhausted(PortId port, VcId vc, int phits) const {
    return outputs_[static_cast<std::size_t>(port)].credits(vc) < phits;
  }
  /// True when the downstream VC buffer is completely unreserved — the
  /// safety condition for opportunistic local misrouting.
  bool vc_buffer_free(PortId port, VcId vc) const {
    const OutputPort& out = outputs_[static_cast<std::size_t>(port)];
    return out.credits(vc) == out.credit_capacity(vc);
  }
  /// Mean reserved fraction over this router's local output ports.
  double mean_local_occupancy() const;
  /// Mean reserved fraction over this router's global output ports.
  double mean_global_occupancy() const;
  const OutputPort& output(PortId port) const {
    return outputs_[static_cast<std::size_t>(port)];
  }
  const InputPort& input(PortId port) const {
    return inputs_[static_cast<std::size_t>(port)];
  }
  /// This router's row in the shared HotState (invariant sweeps).
  const HotState& hot() const { return *hot_; }
  RouterId hot_row() const { return hot_row_; }
  /// Total buffered phits across one input port's VCs: a contiguous sum
  /// over the port's HotState occupancy span, where
  /// InputPort::total_occupancy chases per-VcFifo slot pointers. Same
  /// value either way; this is the injection hot path's form.
  int input_occupancy(PortId port) const {
    const HotLayout& l = hot_->layout();
    const std::int32_t* occ =
        hot_->in_occupancy(hot_row_) +
        l.in_vc_off[static_cast<std::size_t>(port)];
    const int n = l.in_vc_off[static_cast<std::size_t>(port) + 1] -
                  l.in_vc_off[static_cast<std::size_t>(port)];
    int sum = 0;
    for (int i = 0; i < n; ++i) sum += occ[i];
    return sum;
  }

  // --- statistics ---------------------------------------------------------------
  void set_measuring(bool on) { measuring_ = on; }
  void reset_measured_counters() { *injected_measured_ = 0; }
  std::int64_t injected_packets_measured() const {
    return *injected_measured_;
  }
  std::int64_t injected_packets_total() const { return *injected_total_; }
  std::int64_t forwarded_packets_total() const { return *forwarded_total_; }

  // --- checkpoint -----------------------------------------------------------
  /// Serialize the cold mutable state (FIFO/queue orderings, arbiter
  /// pointers, RNG); the hot counters live in the HotState block and the
  /// per-router statistics in the collector's. load() re-derives the
  /// head/mask hot state from the restored FIFOs.
  void save(CheckpointWriter& ck) const;
  void load(CheckpointReader& ck);

 private:
  void execute_grant(const AllocRequest& req, const RoutingDecision& d,
                     Cycle now);
  int input_buffer_capacity(PortKind kind) const;
  int num_vcs_for_input(PortKind kind) const;
  int num_vcs_for_output(PortKind kind) const;
  void set_in_mask(int flat_vc) {
    hot_->in_mask(hot_row_)[flat_vc >> 6] |= 1ull << (flat_vc & 63);
  }
  void clear_in_mask(int flat_vc) {
    hot_->in_mask(hot_row_)[flat_vc >> 6] &= ~(1ull << (flat_vc & 63));
  }

  const Topology& topo_;
  const SimConfig& cfg_;
  RouterId id_;
  RoutingAlgorithm* routing_;
  PacketStore* store_;
  EventSink* sink_;
  Rng rng_;

  /// Private HotState when constructed without a shared one.
  std::unique_ptr<HotState> own_hot_;
  HotState* hot_ = nullptr;
  RouterId hot_row_ = 0;

  std::vector<InputPort> inputs_;
  std::vector<OutputPort> outputs_;
  SeparableAllocator allocator_;
  std::vector<AllocRequest> requests_;
  std::vector<RoutingDecision> decisions_;
  std::vector<PacketRef> considered_;

  bool measuring_ = false;
  bool event_tx_ = false;
  /// Packets currently sitting in this router's input VC buffers; lets
  /// allocate() skip the whole port/VC scan on idle routers.
  int buffered_packets_ = 0;
  /// Packets in output queues not yet put on the wire; lets transmit()
  /// return immediately on idle routers.
  int pending_tx_ = 0;
  /// Fallback counter storage for standalone routers; Network rebinds
  /// the pointers into MetricsCollector's arrays (bind_counters).
  std::int64_t own_injected_measured_ = 0;
  std::int64_t own_injected_total_ = 0;
  std::int64_t own_forwarded_total_ = 0;
  std::int64_t* injected_measured_ = &own_injected_measured_;
  std::int64_t* injected_total_ = &own_injected_total_;
  std::int64_t* forwarded_total_ = &own_forwarded_total_;
};

}  // namespace dragonfly
