#include "router/buffer.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>
#include <utility>

#include "common/checkpoint.hpp"

namespace dragonfly {

void VcFifo::push(PacketRef pkt, int size_phits) {
  if (occupancy_ + size_phits > capacity_) {
    throw std::logic_error("VcFifo overflow: credit accounting broken");
  }
  occupancy_ += size_phits;
  fifo_.push_back(pkt);
}

int VcFifo::pop(int size_phits) {
  if (fifo_.empty()) throw std::logic_error("VcFifo::pop on empty FIFO");
  fifo_.pop_front();
  occupancy_ -= size_phits;
  if (occupancy_ < 0) throw std::logic_error("VcFifo negative occupancy");
  return size_phits;
}

int InputPort::total_occupancy() const {
  int sum = 0;
  for (const auto& vc : vcs) sum += vc.occupancy();
  return sum;
}

void OutputPort::configure(PortKind kind, RouterId peer, PortId peer_port,
                           Cycle link_latency, int queue_capacity,
                           std::vector<int> credits_per_vc) {
  kind_ = kind;
  peer_ = peer;
  peer_port_ = peer_port;
  link_latency_ = link_latency;
  queue_capacity_ = queue_capacity;
  credits_ = credits_per_vc;
  credit_capacity_ = std::move(credits_per_vc);
}

void OutputPort::take_credits(VcId vc, int phits) {
  auto& c = credits_[static_cast<std::size_t>(vc)];
  c -= phits;
  if (c < 0) throw std::logic_error("OutputPort: negative credits");
}

void OutputPort::return_credits(VcId vc, int phits) {
  auto& c = credits_[static_cast<std::size_t>(vc)];
  c += phits;
  if (c > credit_capacity_[static_cast<std::size_t>(vc)]) {
    throw std::logic_error("OutputPort: credit overflow");
  }
}

int OutputPort::reserved_phits() const {
  int reserved = 0;
  for (std::size_t i = 0; i < credits_.size(); ++i) {
    reserved += credit_capacity_[i] - credits_[i];
  }
  return reserved;
}

double OutputPort::occupancy_fraction() const {
  if (kind_ == PortKind::kEjection) return 0.0;
  const int cap =
      std::accumulate(credit_capacity_.begin(), credit_capacity_.end(), 0);
  if (cap == 0 || queue_capacity_ == 0) return 0.0;
  // Two congestion signatures, whichever is stronger:
  //  - backlog in this router's output queue (serialization-bound link:
  //    grants outpace the 1 phit/cycle drain);
  //  - downstream buffer reservation (credit loop: the next router is not
  //    draining its input VC buffers).
  const double queue_frac =
      static_cast<double>(queue_occupancy_) / static_cast<double>(queue_capacity_);
  const double reserved_frac =
      static_cast<double>(reserved_phits()) / static_cast<double>(cap);
  return std::max(queue_frac, reserved_frac);
}

double OutputPort::vc_occupancy_fraction(VcId vc) const {
  if (kind_ == PortKind::kEjection) return 0.0;
  const int cap = credit_capacity_[static_cast<std::size_t>(vc)];
  if (cap == 0) return 0.0;
  return static_cast<double>(cap - credits_[static_cast<std::size_t>(vc)]) /
         static_cast<double>(cap);
}

void OutputPort::enqueue(PacketRef pkt, VcId out_vc, Cycle ready,
                         int size_phits) {
  if (!queue_has_space(size_phits)) {
    throw std::logic_error("OutputPort queue overflow: allocator must check");
  }
  queue_occupancy_ += size_phits;
  queue_.push_back(PendingTx{pkt, out_vc, ready});
}

bool OutputPort::can_transmit(Cycle now) const {
  return !queue_.empty() && queue_.front().ready <= now && link_free_ <= now;
}

PendingTx OutputPort::begin_transmission(Cycle now, int size_phits) {
  PendingTx tx = queue_.front();
  queue_.pop_front();
  queue_occupancy_ -= size_phits;
  link_free_ = now + size_phits;  // serialization: 1 phit/cycle
  return tx;
}

void VcFifo::save(CheckpointWriter& ck) const {
  ck.i32(occupancy_);
  ck.u64(fifo_.size());
  for (const PacketRef ref : fifo_) ck.i32(ref);
}

void VcFifo::load(CheckpointReader& ck) {
  occupancy_ = ck.i32();
  const std::uint64_t n = ck.u64();
  fifo_.clear();
  for (std::uint64_t i = 0; i < n; ++i) fifo_.push_back(ck.i32());
}

void OutputPort::save(CheckpointWriter& ck) const {
  ck.i32(queue_occupancy_);
  ck.i64(link_free_);
  ck.vec(credits_, [&](int c) { ck.i32(c); });
  ck.u64(queue_.size());
  for (const PendingTx& tx : queue_) {
    ck.i32(tx.pkt);
    ck.i32(tx.out_vc);
    ck.i64(tx.ready);
  }
}

void OutputPort::load(CheckpointReader& ck) {
  queue_occupancy_ = ck.i32();
  link_free_ = ck.i64();
  ck.vec(credits_, [&] { return ck.i32(); });
  if (credits_.size() != credit_capacity_.size()) {
    throw std::runtime_error(
        "checkpoint: output-port VC count mismatch (config drift)");
  }
  const std::uint64_t n = ck.u64();
  queue_.clear();
  for (std::uint64_t i = 0; i < n; ++i) {
    PendingTx tx;
    tx.pkt = ck.i32();
    tx.out_vc = ck.i32();
    tx.ready = ck.i64();
    queue_.push_back(tx);
  }
}

}  // namespace dragonfly
