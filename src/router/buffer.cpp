#include "router/buffer.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "common/checkpoint.hpp"

namespace dragonfly {

void VcFifo::push(PacketRef pkt, int size_phits) {
  if (*occ_ + size_phits > capacity_) {
    throw std::logic_error("VcFifo overflow: credit accounting broken");
  }
  *occ_ += size_phits;
  fifo_.push_back(pkt);
  if (fifo_.size() == 1) *head_ = pkt;
}

int VcFifo::pop(int size_phits) {
  if (fifo_.empty()) throw std::logic_error("VcFifo::pop on empty FIFO");
  fifo_.pop_front();
  *occ_ -= size_phits;
  if (*occ_ < 0) throw std::logic_error("VcFifo negative occupancy");
  *head_ = fifo_.empty() ? kNoPacket : fifo_.front();
  return size_phits;
}

int InputPort::total_occupancy() const {
  int sum = 0;
  for (const auto& vc : vcs) sum += vc.occupancy();
  return sum;
}

void OutputPort::configure(PortKind kind, RouterId peer, PortId peer_port,
                           Cycle link_latency, int queue_capacity,
                           std::vector<int> credits_per_vc,
                           OutputHotSlots slots) {
  kind_ = kind;
  peer_ = peer;
  peer_port_ = peer_port;
  link_latency_ = link_latency;
  queue_capacity_ = queue_capacity;
  num_vcs_ = static_cast<int>(credits_per_vc.size());
  if (slots.credits != nullptr) {
    credits_ = slots.credits;
    credit_capacity_ = slots.credit_capacity;
    queue_occupancy_ = slots.queue_occupancy;
    link_free_ = slots.link_free;
    own_credits_.clear();
    own_capacity_.clear();
  } else {
    own_credits_.assign(credits_per_vc.begin(), credits_per_vc.end());
    own_capacity_ = own_credits_;
    credits_ = own_credits_.data();
    credit_capacity_ = own_capacity_.data();
    queue_occupancy_ = &own_queue_occupancy_;
    link_free_ = &own_link_free_;
  }
  for (int v = 0; v < num_vcs_; ++v) {
    credits_[v] = credits_per_vc[static_cast<std::size_t>(v)];
    credit_capacity_[v] = credits_per_vc[static_cast<std::size_t>(v)];
  }
  *queue_occupancy_ = 0;
  *link_free_ = 0;
  queue_.clear();
}

void OutputPort::copy_from(const OutputPort& other) {
  kind_ = other.kind_;
  peer_ = other.peer_;
  peer_port_ = other.peer_port_;
  link_latency_ = other.link_latency_;
  queue_capacity_ = other.queue_capacity_;
  num_vcs_ = other.num_vcs_;
  queue_ = other.queue_;
  // A copy always owns its counters: the source's HotState binding (if
  // any) belongs to the source's (router, port) slot.
  own_credits_.assign(other.credits_, other.credits_ + other.num_vcs_);
  own_capacity_.assign(other.credit_capacity_,
                       other.credit_capacity_ + other.num_vcs_);
  own_queue_occupancy_ = *other.queue_occupancy_;
  own_link_free_ = *other.link_free_;
  credits_ = own_credits_.data();
  credit_capacity_ = own_capacity_.data();
  queue_occupancy_ = &own_queue_occupancy_;
  link_free_ = &own_link_free_;
}

void OutputPort::take_credits(VcId vc, int phits) {
  credits_[vc] -= phits;
  if (credits_[vc] < 0) {
    throw std::logic_error("OutputPort: negative credits");
  }
}

void OutputPort::return_credits(VcId vc, int phits) {
  credits_[vc] += phits;
  if (credits_[vc] > credit_capacity_[vc]) {
    throw std::logic_error("OutputPort: credit overflow");
  }
}

int OutputPort::reserved_phits() const {
  int reserved = 0;
  for (int v = 0; v < num_vcs_; ++v) reserved += credit_capacity_[v] - credits_[v];
  return reserved;
}

double OutputPort::occupancy_fraction() const {
  if (kind_ == PortKind::kEjection) return 0.0;
  int cap = 0;
  for (int v = 0; v < num_vcs_; ++v) cap += credit_capacity_[v];
  if (cap == 0 || queue_capacity_ == 0) return 0.0;
  // Two congestion signatures, whichever is stronger:
  //  - backlog in this router's output queue (serialization-bound link:
  //    grants outpace the 1 phit/cycle drain);
  //  - downstream buffer reservation (credit loop: the next router is not
  //    draining its input VC buffers).
  const double queue_frac = static_cast<double>(*queue_occupancy_) /
                            static_cast<double>(queue_capacity_);
  const double reserved_frac =
      static_cast<double>(reserved_phits()) / static_cast<double>(cap);
  return std::max(queue_frac, reserved_frac);
}

double OutputPort::vc_occupancy_fraction(VcId vc) const {
  if (kind_ == PortKind::kEjection) return 0.0;
  const int cap = credit_capacity_[vc];
  if (cap == 0) return 0.0;
  return static_cast<double>(cap - credits_[vc]) / static_cast<double>(cap);
}

void OutputPort::enqueue(PacketRef pkt, VcId out_vc, Cycle ready,
                         int size_phits) {
  if (!queue_has_space(size_phits)) {
    throw std::logic_error("OutputPort queue overflow: allocator must check");
  }
  *queue_occupancy_ += size_phits;
  queue_.push_back(PendingTx{pkt, out_vc, ready});
}

bool OutputPort::can_transmit(Cycle now) const {
  return !queue_.empty() && queue_.front().ready <= now && *link_free_ <= now;
}

PendingTx OutputPort::begin_transmission(Cycle now, int size_phits) {
  PendingTx tx = queue_.front();
  queue_.pop_front();
  *queue_occupancy_ -= size_phits;
  *link_free_ = now + size_phits;  // serialization: 1 phit/cycle
  return tx;
}

void VcFifo::save(CheckpointWriter& ck) const {
  ck.u64(fifo_.size());
  for (const PacketRef ref : fifo_) ck.pkt(ref);
}

void VcFifo::load(CheckpointReader& ck) {
  const std::uint64_t n = ck.u64();
  fifo_.clear();
  for (std::uint64_t i = 0; i < n; ++i) fifo_.push_back(ck.pkt());
  refresh_head();
}

void OutputPort::save(CheckpointWriter& ck) const {
  ck.u64(queue_.size());
  for (const PendingTx& tx : queue_) {
    ck.pkt(tx.pkt);
    ck.i32(tx.out_vc);
    ck.i64(tx.ready);
  }
}

void OutputPort::load(CheckpointReader& ck) {
  const std::uint64_t n = ck.u64();
  queue_.clear();
  for (std::uint64_t i = 0; i < n; ++i) {
    PendingTx tx;
    tx.pkt = ck.pkt();
    tx.out_vc = ck.i32();
    tx.ready = ck.i64();
    queue_.push_back(tx);
  }
}

}  // namespace dragonfly
