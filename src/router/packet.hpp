// Packet state: routing progress, VC bookkeeping and the timestamps that
// feed the latency-component breakdown of Figure 3.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/types.hpp"

namespace dragonfly {

class CheckpointWriter;
class CheckpointReader;

/// Routing phase of a packet. Transitions:
///   kSourceFlex --(commit global misroute)--> kToIntermediate
///   kSourceFlex --(traverse minimal global link)--> kCommitted
///   kToIntermediate --(arrive intermediate group)--> kCommitted
/// Oblivious/source-adaptive mechanisms decide at injection and start
/// directly in kToIntermediate (Valiant) or kCommitted (minimal).
enum class Phase : std::uint8_t {
  kSourceFlex,      ///< in source group; in-transit mechanisms may still misroute globally
  kToIntermediate,  ///< committed to a non-minimal path, heading to the intermediate group
  kCommitted,       ///< routing minimally to the destination
};

struct Packet {
  PacketId id = 0;
  NodeId src = kInvalidNode;
  NodeId dst = kInvalidNode;
  std::int32_t size_phits = 8;
  /// Owning workload job (-1 = none). Stamped at generation, carried to
  /// delivery so MetricsCollector can attribute accepted load and
  /// latency per tenant (checkpoint format v5).
  std::int32_t job = -1;

  // --- routing state ----------------------------------------------------
  Phase phase = Phase::kSourceFlex;
  /// Intermediate group of a committed non-minimal path.
  GroupId intermediate_group = kInvalidGroup;
  /// Chosen exit global link for the non-minimal path (router owning it
  /// and its global port); used while still in the source group.
  RouterId nm_exit_router = kInvalidRouter;
  PortId nm_exit_port = kInvalidPort;
  /// One opportunistic local misroute allowed per group (OLM). The
  /// detour is a single hop, so no target needs to be remembered:
  /// minimal routing resumes from the misroute router.
  bool local_misrouted_this_group = false;

  // --- hop / VC bookkeeping ----------------------------------------------
  std::uint8_t local_hops = 0;
  std::uint8_t global_hops = 0;
  /// Consecutive allocation denials at the current router head-of-queue.
  /// In-transit adaptive routing alternates minimal/candidate requests on
  /// this counter (opportunistic misrouting: try minimal first, divert
  /// after observing a block). Reset on every grant.
  std::uint16_t denied_cycles = 0;

  // --- position -----------------------------------------------------------
  RouterId current_router = kInvalidRouter;
  PortId in_port = kInvalidPort;
  VcId in_vc = kInvalidVc;

  // --- latency accounting --------------------------------------------------
  Cycle t_gen = 0;             ///< generated at the node (age arbitration)
  /// Entered the injection queue at the source router — the paper's
  /// latency clock start (Sec. IV-B). Waiting in the node's finite source
  /// queue before this point is generation backpressure, not latency.
  Cycle t_net = 0;
  Cycle t_arrival = 0;         ///< head arrival at the current router
  Cycle wait_injection = 0;    ///< cycles spent waiting in injection queues
  Cycle wait_local = 0;        ///< cycles waiting in local transit queues
  Cycle wait_global = 0;       ///< cycles waiting in global transit queues
  /// Structural delay accumulated so far: router pipelines + link
  /// traversals (+ final serialization, added at delivery). The delivery
  /// identity `latency == structural + waits` is asserted in tests.
  Cycle structural = 0;

  void reset_group_state() { local_misrouted_this_group = false; }

  void save(CheckpointWriter& ck) const;
  void load(CheckpointReader& ck);
};

/// Index-based packet arena with per-arena free lists. Queues hold
/// `PacketRef` (int32) indices; the store keeps packets in chunked blocks
/// and recycles slots so steady-state simulation does no allocation.
///
/// A ref encodes (arena, slot): the high bits select the owning arena,
/// the low kArenaShift bits the slot inside it. A sharded Network gives
/// every shard its own arena so concurrent packet creation never
/// contends; arena 0 is the default for unsharded use, and a
/// default-constructed store has exactly one arena.
using PacketRef = std::int32_t;
inline constexpr PacketRef kNoPacket = -1;

/// Bits reserved for the slot index within an arena (4M slots/arena).
inline constexpr int kArenaShift = 22;
inline constexpr PacketRef kArenaSlotMask = (PacketRef{1} << kArenaShift) - 1;
/// Keeps every encoded ref a positive int32 (bit 31 clear).
inline constexpr int kMaxArenas = 1 << (31 - kArenaShift);

class PacketStore {
 public:
  PacketStore() { configure(1); }
  PacketStore(PacketStore&&) = default;
  PacketStore& operator=(PacketStore&&) = default;

  /// Reset the store to `arenas` empty arenas (1..kMaxArenas). Every
  /// outstanding ref is invalidated; the Network calls this once at build
  /// time with its shard count.
  void configure(int arenas);
  int arenas() const { return static_cast<int>(arenas_.size()); }

  static constexpr PacketRef make_ref(int arena, std::uint32_t slot) {
    return (static_cast<PacketRef>(arena) << kArenaShift) |
           static_cast<PacketRef>(slot);
  }
  static constexpr int arena_of(PacketRef ref) { return ref >> kArenaShift; }
  static constexpr std::uint32_t slot_of(PacketRef ref) {
    return static_cast<std::uint32_t>(ref & kArenaSlotMask);
  }

  PacketRef create(int arena = 0);
  void destroy(PacketRef ref);

  /// Thread-safety of concurrent access while one shard creates packets
  /// in its own arena: the outer block vector is reserved up front
  /// (kMaxBlocks), so appending a block never moves existing block
  /// pointers, and lookup never reads the vector's size — other shards
  /// can safely dereference refs to packets that already existed.
  Packet& operator[](PacketRef ref) {
    return arenas_[static_cast<std::size_t>(arena_of(ref))]
        .blocks.data()[slot_of(ref) >> kBlockShift][slot_of(ref) & kBlockMask];
  }
  const Packet& operator[](PacketRef ref) const {
    return arenas_[static_cast<std::size_t>(arena_of(ref))]
        .blocks.data()[slot_of(ref) >> kBlockShift][slot_of(ref) & kBlockMask];
  }

  /// Number of live (created, not destroyed) packets, over all arenas.
  std::size_t live() const;
  /// Total slots ever materialized, over all arenas.
  std::size_t capacity() const;

  /// Slots materialized in one arena (dense traversals iterate arenas in
  /// ascending order, slots ascending within each).
  std::uint32_t arena_size(int arena) const {
    return arenas_[static_cast<std::size_t>(arena)].size;
  }

  /// Position of `ref` in the dense (arena-ascending, slot-ascending)
  /// enumeration of materialized slots. dense_capacity() == capacity().
  std::size_t dense_index(PacketRef ref) const;
  std::size_t dense_capacity() const { return capacity(); }

  /// Per-slot liveness (1 = created and not destroyed) in dense order,
  /// for the orphaned-flit invariant sweep.
  std::vector<char> live_mask() const;

  /// Checkpoint the whole store (slots + free lists) with raw refs.
  /// Standalone-fixture convenience; Network::save instead serializes
  /// live packets in canonical order (format v4) so streams stay
  /// independent of the arena partition.
  void save(CheckpointWriter& ck) const;
  void load(CheckpointReader& ck);

 private:
  static constexpr int kBlockShift = 12;  ///< 4096 packets per block
  static constexpr std::uint32_t kBlockSize = 1u << kBlockShift;
  static constexpr std::uint32_t kBlockMask = kBlockSize - 1;
  static constexpr std::size_t kMaxBlocks = std::size_t{1}
                                            << (kArenaShift - kBlockShift);

  struct Arena {
    std::vector<std::unique_ptr<Packet[]>> blocks;
    std::uint32_t size = 0;  ///< slots materialized (blocks may hold more)
    std::vector<std::uint32_t> free;
  };

  std::vector<Arena> arenas_;
};

}  // namespace dragonfly
