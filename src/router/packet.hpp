// Packet state: routing progress, VC bookkeeping and the timestamps that
// feed the latency-component breakdown of Figure 3.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"

namespace dragonfly {

class CheckpointWriter;
class CheckpointReader;

/// Routing phase of a packet. Transitions:
///   kSourceFlex --(commit global misroute)--> kToIntermediate
///   kSourceFlex --(traverse minimal global link)--> kCommitted
///   kToIntermediate --(arrive intermediate group)--> kCommitted
/// Oblivious/source-adaptive mechanisms decide at injection and start
/// directly in kToIntermediate (Valiant) or kCommitted (minimal).
enum class Phase : std::uint8_t {
  kSourceFlex,      ///< in source group; in-transit mechanisms may still misroute globally
  kToIntermediate,  ///< committed to a non-minimal path, heading to the intermediate group
  kCommitted,       ///< routing minimally to the destination
};

struct Packet {
  PacketId id = 0;
  NodeId src = kInvalidNode;
  NodeId dst = kInvalidNode;
  std::int32_t size_phits = 8;

  // --- routing state ----------------------------------------------------
  Phase phase = Phase::kSourceFlex;
  /// Intermediate group of a committed non-minimal path.
  GroupId intermediate_group = kInvalidGroup;
  /// Chosen exit global link for the non-minimal path (router owning it
  /// and its global port); used while still in the source group.
  RouterId nm_exit_router = kInvalidRouter;
  PortId nm_exit_port = kInvalidPort;
  /// One opportunistic local misroute allowed per group (OLM). The
  /// detour is a single hop, so no target needs to be remembered:
  /// minimal routing resumes from the misroute router.
  bool local_misrouted_this_group = false;

  // --- hop / VC bookkeeping ----------------------------------------------
  std::uint8_t local_hops = 0;
  std::uint8_t global_hops = 0;
  /// Consecutive allocation denials at the current router head-of-queue.
  /// In-transit adaptive routing alternates minimal/candidate requests on
  /// this counter (opportunistic misrouting: try minimal first, divert
  /// after observing a block). Reset on every grant.
  std::uint16_t denied_cycles = 0;

  // --- position -----------------------------------------------------------
  RouterId current_router = kInvalidRouter;
  PortId in_port = kInvalidPort;
  VcId in_vc = kInvalidVc;

  // --- latency accounting --------------------------------------------------
  Cycle t_gen = 0;             ///< generated at the node (age arbitration)
  /// Entered the injection queue at the source router — the paper's
  /// latency clock start (Sec. IV-B). Waiting in the node's finite source
  /// queue before this point is generation backpressure, not latency.
  Cycle t_net = 0;
  Cycle t_arrival = 0;         ///< head arrival at the current router
  Cycle wait_injection = 0;    ///< cycles spent waiting in injection queues
  Cycle wait_local = 0;        ///< cycles waiting in local transit queues
  Cycle wait_global = 0;       ///< cycles waiting in global transit queues
  /// Structural delay accumulated so far: router pipelines + link
  /// traversals (+ final serialization, added at delivery). The delivery
  /// identity `latency == structural + waits` is asserted in tests.
  Cycle structural = 0;

  void reset_group_state() { local_misrouted_this_group = false; }

  void save(CheckpointWriter& ck) const;
  void load(CheckpointReader& ck);
};

/// Index-based packet arena with a free list. Queues hold `PacketRef`
/// (int32) indices; the arena keeps packets contiguous and recycles slots
/// so steady-state simulation does no allocation.
using PacketRef = std::int32_t;
inline constexpr PacketRef kNoPacket = -1;

class PacketStore {
 public:
  PacketRef create();
  void destroy(PacketRef ref);

  Packet& operator[](PacketRef ref) { return slots_[static_cast<std::size_t>(ref)]; }
  const Packet& operator[](PacketRef ref) const {
    return slots_[static_cast<std::size_t>(ref)];
  }

  /// Number of live (created, not destroyed) packets.
  std::size_t live() const { return slots_.size() - free_.size(); }
  std::size_t capacity() const { return slots_.size(); }

  /// Per-slot liveness (1 = created and not destroyed), for the
  /// orphaned-flit invariant sweep.
  std::vector<char> live_mask() const;

  /// Checkpoint the whole arena (slots + free list), so every PacketRef
  /// held in queues and events stays valid across restore.
  void save(CheckpointWriter& ck) const;
  void load(CheckpointReader& ck);

 private:
  std::vector<Packet> slots_;
  std::vector<PacketRef> free_;
};

}  // namespace dragonfly
