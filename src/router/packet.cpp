#include "router/packet.hpp"

namespace dragonfly {

PacketRef PacketStore::create() {
  if (!free_.empty()) {
    const PacketRef ref = free_.back();
    free_.pop_back();
    slots_[static_cast<std::size_t>(ref)] = Packet{};
    return ref;
  }
  slots_.emplace_back();
  return static_cast<PacketRef>(slots_.size() - 1);
}

void PacketStore::destroy(PacketRef ref) { free_.push_back(ref); }

}  // namespace dragonfly
