#include "router/packet.hpp"

#include "common/checkpoint.hpp"

namespace dragonfly {

void Packet::save(CheckpointWriter& ck) const {
  ck.i64(id);
  ck.i32(src);
  ck.i32(dst);
  ck.i32(size_phits);
  ck.u8(static_cast<std::uint8_t>(phase));
  ck.i32(intermediate_group);
  ck.i32(nm_exit_router);
  ck.i32(nm_exit_port);
  ck.boolean(local_misrouted_this_group);
  ck.u8(local_hops);
  ck.u8(global_hops);
  ck.u32(denied_cycles);
  ck.i32(current_router);
  ck.i32(in_port);
  ck.i32(in_vc);
  ck.i64(t_gen);
  ck.i64(t_net);
  ck.i64(t_arrival);
  ck.i64(wait_injection);
  ck.i64(wait_local);
  ck.i64(wait_global);
  ck.i64(structural);
}

void Packet::load(CheckpointReader& ck) {
  id = ck.i64();
  src = ck.i32();
  dst = ck.i32();
  size_phits = ck.i32();
  phase = static_cast<Phase>(ck.u8());
  intermediate_group = ck.i32();
  nm_exit_router = ck.i32();
  nm_exit_port = ck.i32();
  local_misrouted_this_group = ck.boolean();
  local_hops = static_cast<std::uint8_t>(ck.u8());
  global_hops = static_cast<std::uint8_t>(ck.u8());
  denied_cycles = static_cast<std::uint16_t>(ck.u32());
  current_router = ck.i32();
  in_port = ck.i32();
  in_vc = ck.i32();
  t_gen = ck.i64();
  t_net = ck.i64();
  t_arrival = ck.i64();
  wait_injection = ck.i64();
  wait_local = ck.i64();
  wait_global = ck.i64();
  structural = ck.i64();
}

std::vector<char> PacketStore::live_mask() const {
  std::vector<char> live(slots_.size(), 1);
  for (const PacketRef ref : free_) {
    live[static_cast<std::size_t>(ref)] = 0;
  }
  return live;
}

void PacketStore::save(CheckpointWriter& ck) const {
  ck.tag("PacketStore");
  ck.vec(slots_, [&](const Packet& p) { p.save(ck); });
  ck.vec(free_, [&](PacketRef r) { ck.i32(r); });
}

void PacketStore::load(CheckpointReader& ck) {
  ck.tag("PacketStore");
  ck.vec(slots_, [&] {
    Packet p;
    p.load(ck);
    return p;
  });
  ck.vec(free_, [&] { return ck.i32(); });
}

PacketRef PacketStore::create() {
  if (!free_.empty()) {
    const PacketRef ref = free_.back();
    free_.pop_back();
    slots_[static_cast<std::size_t>(ref)] = Packet{};
    return ref;
  }
  slots_.emplace_back();
  return static_cast<PacketRef>(slots_.size() - 1);
}

void PacketStore::destroy(PacketRef ref) { free_.push_back(ref); }

}  // namespace dragonfly
