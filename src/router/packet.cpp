#include "router/packet.hpp"

#include <stdexcept>
#include <string>

#include "common/checkpoint.hpp"

namespace dragonfly {

void Packet::save(CheckpointWriter& ck) const {
  ck.i64(id);
  ck.i32(src);
  ck.i32(dst);
  ck.i32(size_phits);
  ck.u8(static_cast<std::uint8_t>(phase));
  ck.i32(intermediate_group);
  ck.i32(nm_exit_router);
  ck.i32(nm_exit_port);
  ck.boolean(local_misrouted_this_group);
  ck.u8(local_hops);
  ck.u8(global_hops);
  ck.u32(denied_cycles);
  ck.i32(current_router);
  ck.i32(in_port);
  ck.i32(in_vc);
  ck.i64(t_gen);
  ck.i64(t_net);
  ck.i64(t_arrival);
  ck.i64(wait_injection);
  ck.i64(wait_local);
  ck.i64(wait_global);
  ck.i64(structural);
  ck.i32(job);  // appended in checkpoint format v5
}

void Packet::load(CheckpointReader& ck) {
  id = ck.i64();
  src = ck.i32();
  dst = ck.i32();
  size_phits = ck.i32();
  phase = static_cast<Phase>(ck.u8());
  intermediate_group = ck.i32();
  nm_exit_router = ck.i32();
  nm_exit_port = ck.i32();
  local_misrouted_this_group = ck.boolean();
  local_hops = static_cast<std::uint8_t>(ck.u8());
  global_hops = static_cast<std::uint8_t>(ck.u8());
  denied_cycles = static_cast<std::uint16_t>(ck.u32());
  current_router = ck.i32();
  in_port = ck.i32();
  in_vc = ck.i32();
  t_gen = ck.i64();
  t_net = ck.i64();
  t_arrival = ck.i64();
  wait_injection = ck.i64();
  wait_local = ck.i64();
  wait_global = ck.i64();
  structural = ck.i64();
  job = ck.i32();
}

void PacketStore::configure(int arenas) {
  if (arenas < 1 || arenas > kMaxArenas) {
    throw std::invalid_argument("PacketStore: arena count " +
                                std::to_string(arenas) + " out of range [1, " +
                                std::to_string(kMaxArenas) + "]");
  }
  arenas_.clear();
  arenas_.resize(static_cast<std::size_t>(arenas));
  // Reserving the outer block vector up front is what makes cross-arena
  // reads safe while an arena's owner appends a block: push_back below
  // never reallocates, so block pointers other threads chase stay valid.
  for (Arena& a : arenas_) a.blocks.reserve(kMaxBlocks);
}

std::size_t PacketStore::live() const {
  std::size_t n = 0;
  for (const Arena& a : arenas_) n += a.size - a.free.size();
  return n;
}

std::size_t PacketStore::capacity() const {
  std::size_t n = 0;
  for (const Arena& a : arenas_) n += a.size;
  return n;
}

std::size_t PacketStore::dense_index(PacketRef ref) const {
  std::size_t base = 0;
  const int arena = arena_of(ref);
  for (int a = 0; a < arena; ++a) {
    base += arenas_[static_cast<std::size_t>(a)].size;
  }
  return base + slot_of(ref);
}

std::vector<char> PacketStore::live_mask() const {
  std::vector<char> live(capacity(), 1);
  std::size_t base = 0;
  for (const Arena& a : arenas_) {
    for (const std::uint32_t slot : a.free) {
      live[base + slot] = 0;
    }
    base += a.size;
  }
  return live;
}

void PacketStore::save(CheckpointWriter& ck) const {
  ck.tag("PacketStore");
  ck.u32(static_cast<std::uint32_t>(arenas_.size()));
  for (const Arena& a : arenas_) {
    ck.u32(a.size);
    for (std::uint32_t s = 0; s < a.size; ++s) {
      a.blocks[s >> kBlockShift][s & kBlockMask].save(ck);
    }
    ck.u64(a.free.size());
    for (const std::uint32_t slot : a.free) ck.u32(slot);
  }
}

void PacketStore::load(CheckpointReader& ck) {
  ck.tag("PacketStore");
  const int arenas = static_cast<int>(ck.u32());
  configure(arenas);
  for (Arena& a : arenas_) {
    const std::uint32_t size = ck.u32();
    for (std::uint32_t s = 0; s < size; ++s) {
      if ((a.size & kBlockMask) == 0) {
        a.blocks.push_back(std::make_unique<Packet[]>(kBlockSize));
      }
      a.blocks[s >> kBlockShift][s & kBlockMask].load(ck);
      ++a.size;
    }
    const std::uint64_t frees = ck.u64();
    a.free.clear();
    a.free.reserve(static_cast<std::size_t>(frees));
    for (std::uint64_t i = 0; i < frees; ++i) a.free.push_back(ck.u32());
  }
}

PacketRef PacketStore::create(int arena) {
  Arena& a = arenas_[static_cast<std::size_t>(arena)];
  if (!a.free.empty()) {
    const std::uint32_t slot = a.free.back();
    a.free.pop_back();
    a.blocks[slot >> kBlockShift][slot & kBlockMask] = Packet{};
    return make_ref(arena, slot);
  }
  if ((a.size & kBlockMask) == 0) {
    a.blocks.push_back(std::make_unique<Packet[]>(kBlockSize));
  }
  const std::uint32_t slot = a.size++;
  return make_ref(arena, slot);
}

void PacketStore::destroy(PacketRef ref) {
  arenas_[static_cast<std::size_t>(arena_of(ref))].free.push_back(slot_of(ref));
}

}  // namespace dragonfly
