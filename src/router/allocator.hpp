// Iterative separable batch allocator (Table I: "iterative separable
// batch allocator", 2x internal frequency speedup).
//
// Each cycle the router presents one request per non-empty input VC.
// The allocator runs a configurable number of input-first/output-second
// iterations; the 2x speedup is modelled as up to two grants per input
// port and per output port per link-clock cycle.
//
// Output arbitration supports three modes, in priority order:
//   1. transit-over-injection priority (Sec. V-A of the paper),
//   2. age arbitration (oldest generation timestamp first; the explicit
//      fairness mechanism the paper's Sec. VI points to), and
//   3. round-robin with persistent pointers.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"

namespace dragonfly {

class CheckpointWriter;
class CheckpointReader;

/// One allocation request: input VC head packet -> (output port, VC).
struct AllocRequest {
  PortId in_port = kInvalidPort;
  VcId in_vc = kInvalidVc;
  PortId out_port = kInvalidPort;
  VcId out_vc = kInvalidVc;
  bool is_injection = false;  ///< request comes from an injection port
  Cycle age = 0;              ///< packet generation time (age arbitration)
  bool granted = false;
};

struct AllocatorConfig {
  int iterations = 3;
  int max_grants_per_input = 2;
  int max_grants_per_output = 2;
  bool transit_priority = true;
  bool age_arbitration = false;
};

/// Persistent arbiter state plus scratch buffers (one instance per
/// router; reused every cycle to avoid allocation in the hot loop).
class SeparableAllocator {
 public:
  SeparableAllocator(int num_inputs, int num_outputs, AllocatorConfig cfg);

  /// Marks granted requests in place. Guarantees:
  ///  - at most one grant per (in_port, in_vc) — requests are unique per VC,
  ///  - at most cfg.max_grants_per_input grants per input port,
  ///  - at most cfg.max_grants_per_output grants per output port,
  ///  - with transit_priority, an injection request is granted on an
  ///    output only in iterations where no transit request asked for it.
  void allocate(std::vector<AllocRequest>& requests);

  const AllocatorConfig& config() const { return cfg_; }

  /// Checkpoint the persistent arbiter state (round-robin pointers);
  /// scratch buffers carry nothing across cycles.
  void save(CheckpointWriter& ck) const;
  void load(CheckpointReader& ck);

 private:
  int num_inputs_;
  int num_outputs_;
  AllocatorConfig cfg_;
  // Persistent round-robin pointers.
  std::vector<std::uint32_t> input_rr_;
  std::vector<std::uint32_t> output_rr_;
  // Scratch, reused across cycles. The per-port buckets are cleared and
  // walked *sparsely* via the touched lists: a cycle with a handful of
  // requests costs a handful of operations, not a full-radix scan.
  std::vector<std::vector<int>> by_input_;
  std::vector<std::vector<int>> proposals_;
  std::vector<int> grants_in_;
  std::vector<int> grants_out_;
  std::vector<int> touched_ins_;
  std::vector<int> touched_outs_;
};

}  // namespace dragonfly
