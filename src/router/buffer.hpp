// Input-port VC buffers, output-port queues and credit bookkeeping.
//
// Flow control is virtual cut-through at packet granularity: a grant
// reserves the whole packet in the downstream input VC buffer (credits
// decrement at grant time); the credit returns when the packet is in turn
// granted out of that buffer, delayed by the upstream link latency.
#pragma once

#include <deque>
#include <vector>

#include "common/types.hpp"
#include "router/packet.hpp"

namespace dragonfly {

class CheckpointWriter;
class CheckpointReader;

/// FIFO of arrived packets for one virtual channel of an input port.
class VcFifo {
 public:
  explicit VcFifo(int capacity_phits) : capacity_(capacity_phits) {}

  int capacity() const { return capacity_; }
  int occupancy() const { return occupancy_; }
  int free_space() const { return capacity_ - occupancy_; }
  bool empty() const { return fifo_.empty(); }
  std::size_t packets() const { return fifo_.size(); }

  PacketRef head() const { return fifo_.empty() ? kNoPacket : fifo_.front(); }
  /// Buffered packets in arrival order (invariant sweeps, tests).
  const std::deque<PacketRef>& contents() const { return fifo_; }

  void push(PacketRef pkt, int size_phits);
  /// Pop the head; returns the freed phit count.
  int pop(int size_phits);

  /// Checkpoint contents + occupancy (capacity is reconstructed by
  /// wiring).
  void save(CheckpointWriter& ck) const;
  void load(CheckpointReader& ck);

 private:
  int capacity_;
  int occupancy_ = 0;
  std::deque<PacketRef> fifo_;
};

/// One input port: per-VC FIFOs plus the upstream endpoint needed to
/// return credits (invalid for injection ports, where the node observes
/// buffer space directly).
struct InputPort {
  PortKind kind = PortKind::kLocal;
  RouterId upstream_router = kInvalidRouter;
  PortId upstream_port = kInvalidPort;
  Cycle credit_latency = 0;
  std::vector<VcFifo> vcs;

  int total_occupancy() const;
};

/// A packet sitting in an output queue, not yet on the wire. `ready`
/// models the router pipeline: the packet may start transmission only
/// pipeline_latency cycles after its grant.
struct PendingTx {
  PacketRef pkt = kNoPacket;
  VcId out_vc = 0;
  Cycle ready = 0;
};

/// One output port: downstream credit counters, the post-crossbar output
/// queue and link serialization state.
class OutputPort {
 public:
  void configure(PortKind kind, RouterId peer, PortId peer_port,
                 Cycle link_latency, int queue_capacity,
                 std::vector<int> credits_per_vc);

  PortKind kind() const { return kind_; }
  RouterId peer() const { return peer_; }
  PortId peer_port() const { return peer_port_; }
  Cycle link_latency() const { return link_latency_; }

  int num_vcs() const { return static_cast<int>(credits_.size()); }
  int credits(VcId vc) const { return credits_[static_cast<std::size_t>(vc)]; }
  int credit_capacity(VcId vc) const {
    return credit_capacity_[static_cast<std::size_t>(vc)];
  }
  void take_credits(VcId vc, int phits);
  void return_credits(VcId vc, int phits);

  /// Fraction of downstream buffering already reserved, over all VCs,
  /// combined with this router's output-queue backlog. Used by
  /// PiggyBack's link-state broadcast (ejection ports report 0).
  double occupancy_fraction() const;
  /// Reserved fraction of one downstream VC buffer — the credit count the
  /// in-transit adaptive mechanisms consult (Table I's 43% threshold).
  double vc_occupancy_fraction(VcId vc) const;
  /// Reserved phits (capacity - credits) summed over VCs.
  int reserved_phits() const;

  bool queue_has_space(int phits) const {
    return queue_occupancy_ + phits <= queue_capacity_;
  }
  int queue_occupancy() const { return queue_occupancy_; }
  void enqueue(PacketRef pkt, VcId out_vc, Cycle ready, int size_phits);

  bool can_transmit(Cycle now) const;
  /// Pop the head for transmission at `now`; marks the link busy for
  /// `size_phits` cycles (serialization at 1 phit/cycle).
  PendingTx begin_transmission(Cycle now, int size_phits);
  Cycle link_free_at() const { return link_free_; }
  const PendingTx& queue_head() const { return queue_.front(); }
  /// Queued transmissions in grant order (invariant sweeps, tests).
  const std::deque<PendingTx>& pending() const { return queue_; }

  /// Checkpoint mutable state: credits, queue contents, link
  /// serialization deadline (wiring/capacities come from configure()).
  void save(CheckpointWriter& ck) const;
  void load(CheckpointReader& ck);

 private:
  PortKind kind_ = PortKind::kLocal;
  RouterId peer_ = kInvalidRouter;
  PortId peer_port_ = kInvalidPort;
  Cycle link_latency_ = 0;
  int queue_capacity_ = 0;
  int queue_occupancy_ = 0;
  Cycle link_free_ = 0;
  std::deque<PendingTx> queue_;
  std::vector<int> credits_;
  std::vector<int> credit_capacity_;
};

}  // namespace dragonfly
