// Input-port VC buffers, output-port queues and credit bookkeeping.
//
// Flow control is virtual cut-through at packet granularity: a grant
// reserves the whole packet in the downstream input VC buffer (credits
// decrement at grant time); the credit returns when the packet is in turn
// granted out of that buffer, delayed by the upstream link latency.
//
// Since the data-oriented kernel refactor the *hot* counters (credits,
// queue occupancy, link busy-until, FIFO occupancy, head-of-line packet)
// live in the Network-owned HotState structure-of-arrays; VcFifo and
// OutputPort hold pointers into those arrays, bound at wiring time. Used
// standalone (unit tests) they fall back to private storage, so the
// class behaviour is unchanged either way — only the storage moves.
#pragma once

#include <vector>

#include "common/ring.hpp"
#include "common/types.hpp"
#include "router/packet.hpp"

namespace dragonfly {

class CheckpointWriter;
class CheckpointReader;

/// FIFO of arrived packets for one virtual channel of an input port.
class VcFifo {
 public:
  /// Standalone: occupancy and head tracked in private members.
  /// Bound (Router wiring): they live in the HotState slots passed here.
  explicit VcFifo(int capacity_phits, std::int32_t* occupancy_slot = nullptr,
                  PacketRef* head_slot = nullptr)
      : capacity_(capacity_phits),
        occ_(occupancy_slot ? occupancy_slot : &own_occupancy_),
        head_(head_slot ? head_slot : &own_head_) {
    *occ_ = 0;
    *head_ = kNoPacket;
  }
  VcFifo(const VcFifo& other) { copy_from(other); }
  VcFifo& operator=(const VcFifo& other) {
    if (this != &other) copy_from(other);
    return *this;
  }

  int capacity() const { return capacity_; }
  int occupancy() const { return *occ_; }
  int free_space() const { return capacity_ - *occ_; }
  bool empty() const { return fifo_.empty(); }
  std::size_t packets() const { return fifo_.size(); }

  PacketRef head() const { return *head_; }
  /// Buffered packets in arrival order (invariant sweeps, tests).
  const Ring<PacketRef>& contents() const { return fifo_; }

  void push(PacketRef pkt, int size_phits);
  /// Pop the head; returns the freed phit count.
  int pop(int size_phits);

  /// Checkpoint the FIFO ordering only; the occupancy counter lives in
  /// the HotState arrays (a router-owned private HotState for
  /// standalone routers) and is serialized there.
  void save(CheckpointWriter& ck) const;
  void load(CheckpointReader& ck);
  /// Re-derive the head slot from the FIFO contents (checkpoint load).
  void refresh_head() { *head_ = fifo_.empty() ? kNoPacket : fifo_.front(); }

 private:
  void copy_from(const VcFifo& other) {
    capacity_ = other.capacity_;
    fifo_ = other.fifo_;
    own_occupancy_ = *other.occ_;
    own_head_ = *other.head_;
    // A copied fifo always owns its counters: the source's binding into a
    // HotState (if any) belongs to the source's (router, port, vc) slot.
    occ_ = &own_occupancy_;
    head_ = &own_head_;
  }

  int capacity_ = 0;
  std::int32_t own_occupancy_ = 0;
  PacketRef own_head_ = kNoPacket;
  std::int32_t* occ_ = nullptr;
  PacketRef* head_ = nullptr;
  Ring<PacketRef> fifo_;
};

/// One input port: per-VC FIFOs plus the upstream endpoint needed to
/// return credits (invalid for injection ports, where the node observes
/// buffer space directly).
struct InputPort {
  PortKind kind = PortKind::kLocal;
  RouterId upstream_router = kInvalidRouter;
  PortId upstream_port = kInvalidPort;
  Cycle credit_latency = 0;
  std::vector<VcFifo> vcs;

  int total_occupancy() const;
};

/// A packet sitting in an output queue, not yet on the wire. `ready`
/// models the router pipeline: the packet may start transmission only
/// pipeline_latency cycles after its grant.
struct PendingTx {
  PacketRef pkt = kNoPacket;
  VcId out_vc = 0;
  Cycle ready = 0;
};

/// Hot-state slots of one output port (see HotState). All null =
/// standalone mode with private storage.
struct OutputHotSlots {
  std::int32_t* credits = nullptr;          ///< [num_vcs]
  std::int32_t* credit_capacity = nullptr;  ///< [num_vcs]
  std::int32_t* queue_occupancy = nullptr;
  Cycle* link_free = nullptr;
};

/// One output port: downstream credit counters, the post-crossbar output
/// queue and link serialization state.
class OutputPort {
 public:
  OutputPort() = default;
  OutputPort(const OutputPort& other) { copy_from(other); }
  OutputPort& operator=(const OutputPort& other) {
    if (this != &other) copy_from(other);
    return *this;
  }

  void configure(PortKind kind, RouterId peer, PortId peer_port,
                 Cycle link_latency, int queue_capacity,
                 std::vector<int> credits_per_vc,
                 OutputHotSlots slots = {});

  PortKind kind() const { return kind_; }
  RouterId peer() const { return peer_; }
  PortId peer_port() const { return peer_port_; }
  Cycle link_latency() const { return link_latency_; }

  int num_vcs() const { return num_vcs_; }
  int credits(VcId vc) const { return credits_[vc]; }
  int credit_capacity(VcId vc) const { return credit_capacity_[vc]; }
  void take_credits(VcId vc, int phits);
  void return_credits(VcId vc, int phits);

  /// Fraction of downstream buffering already reserved, over all VCs,
  /// combined with this router's output-queue backlog. Used by
  /// PiggyBack's link-state broadcast (ejection ports report 0).
  double occupancy_fraction() const;
  /// Reserved fraction of one downstream VC buffer — the credit count the
  /// in-transit adaptive mechanisms consult (Table I's 43% threshold).
  double vc_occupancy_fraction(VcId vc) const;
  /// Reserved phits (capacity - credits) summed over VCs.
  int reserved_phits() const;

  bool queue_has_space(int phits) const {
    return *queue_occupancy_ + phits <= queue_capacity_;
  }
  int queue_occupancy() const { return *queue_occupancy_; }
  void enqueue(PacketRef pkt, VcId out_vc, Cycle ready, int size_phits);

  bool can_transmit(Cycle now) const;
  /// Pop the head for transmission at `now`; marks the link busy for
  /// `size_phits` cycles (serialization at 1 phit/cycle).
  PendingTx begin_transmission(Cycle now, int size_phits);
  Cycle link_free_at() const { return *link_free_; }
  const PendingTx& queue_head() const { return queue_.front(); }
  bool queue_empty() const { return queue_.empty(); }
  /// Earliest cycle the current head can go on the wire (meaningless on
  /// an empty queue) — the event-driven kernel's exact fire time.
  Cycle next_fire() const {
    const Cycle ready = queue_.front().ready;
    return ready > *link_free_ ? ready : *link_free_;
  }
  /// Queued transmissions in grant order (invariant sweeps, tests).
  const Ring<PendingTx>& pending() const { return queue_; }

  /// Checkpoint the queue ordering only; the hot counters (credits,
  /// queue occupancy, link deadline) live in the HotState arrays (a
  /// router-owned private HotState for standalone routers) and are
  /// serialized there.
  void save(CheckpointWriter& ck) const;
  void load(CheckpointReader& ck);

 private:
  void copy_from(const OutputPort& other);

  PortKind kind_ = PortKind::kLocal;
  RouterId peer_ = kInvalidRouter;
  PortId peer_port_ = kInvalidPort;
  Cycle link_latency_ = 0;
  int queue_capacity_ = 0;
  int num_vcs_ = 0;
  // Private fallback storage (standalone mode; see OutputHotSlots).
  std::vector<std::int32_t> own_credits_;
  std::vector<std::int32_t> own_capacity_;
  std::int32_t own_queue_occupancy_ = 0;
  Cycle own_link_free_ = 0;
  // Hot counters, pointing either at HotState slots or at the private
  // members above; configure() binds them (null until then, like the
  // pre-SoA empty vectors).
  std::int32_t* credits_ = nullptr;
  std::int32_t* credit_capacity_ = nullptr;
  std::int32_t* queue_occupancy_ = &own_queue_occupancy_;
  Cycle* link_free_ = &own_link_free_;
  Ring<PendingTx> queue_;
};

}  // namespace dragonfly
