#include "router/allocator.hpp"

#include <algorithm>
#include <stdexcept>

#include "common/checkpoint.hpp"

namespace dragonfly {

void SeparableAllocator::save(CheckpointWriter& ck) const {
  ck.vec(input_rr_, [&](std::uint32_t v) { ck.u32(v); });
  ck.vec(output_rr_, [&](std::uint32_t v) { ck.u32(v); });
}

void SeparableAllocator::load(CheckpointReader& ck) {
  const std::size_t in = input_rr_.size();
  const std::size_t out = output_rr_.size();
  ck.vec(input_rr_, [&] { return ck.u32(); });
  ck.vec(output_rr_, [&] { return ck.u32(); });
  if (input_rr_.size() != in || output_rr_.size() != out) {
    throw std::runtime_error(
        "checkpoint: allocator port count mismatch (config drift)");
  }
}

SeparableAllocator::SeparableAllocator(int num_inputs, int num_outputs,
                                       AllocatorConfig cfg)
    : num_inputs_(num_inputs),
      num_outputs_(num_outputs),
      cfg_(cfg),
      input_rr_(static_cast<std::size_t>(num_inputs), 0),
      output_rr_(static_cast<std::size_t>(num_outputs), 0),
      by_input_(static_cast<std::size_t>(num_inputs)),
      proposals_(static_cast<std::size_t>(num_outputs)),
      grants_in_(static_cast<std::size_t>(num_inputs), 0),
      grants_out_(static_cast<std::size_t>(num_outputs), 0) {}

void SeparableAllocator::allocate(std::vector<AllocRequest>& requests) {
  if (requests.empty()) return;  // persistent pointers untouched

  // A lone request short-circuits the whole iterate/propose/arbitrate
  // machinery: with grant budgets >= 1 the full algorithm always grants
  // it on the first iteration (it is its input's only proposal and its
  // output's only proposer, and neither the transit-priority filter nor
  // either arbitration flavour can reject a sole candidate), leaving
  // by_input_/proposals_ exactly as a full pass would. Only the
  // round-robin pointers move, in the same way the grant path moves
  // them — so this is bit-identical, and it covers the majority of
  // saturated-load calls (most active routers arbitrate one head).
  if (requests.size() == 1 && cfg_.iterations >= 1 &&
      cfg_.max_grants_per_input >= 1 && cfg_.max_grants_per_output >= 1) {
    AllocRequest& req = requests[0];
    req.granted = true;
    input_rr_[static_cast<std::size_t>(req.in_port)] += 1;
    if (!cfg_.age_arbitration) {
      output_rr_[static_cast<std::size_t>(req.out_port)] =
          (static_cast<std::uint32_t>(req.in_port) + 1) %
          static_cast<std::uint32_t>(num_inputs_);
    }
    return;
  }

  // Sparse request indexing: only the input/output ports that actually
  // appear in `requests` are cleared, reset and iterated below. The
  // touched lists are sorted so both stages visit ports in ascending
  // id order — the order the old dense 0..radix scans produced — which
  // keeps proposal order (and hence age-arbitration tie-breaks and
  // round-robin updates) bit-identical.
  touched_ins_.clear();
  for (int i = 0; i < static_cast<int>(requests.size()); ++i) {
    const auto& req = requests[static_cast<std::size_t>(i)];
    auto& bucket = by_input_[static_cast<std::size_t>(req.in_port)];
    if (bucket.empty()) {
      touched_ins_.push_back(req.in_port);
      grants_in_[static_cast<std::size_t>(req.in_port)] = 0;
    }
    bucket.push_back(i);
    grants_out_[static_cast<std::size_t>(req.out_port)] = 0;
  }
  std::sort(touched_ins_.begin(), touched_ins_.end());

  for (int iter = 0; iter < cfg_.iterations; ++iter) {
    for (const int out : touched_outs_) {
      proposals_[static_cast<std::size_t>(out)].clear();
    }
    touched_outs_.clear();

    // Input stage: each requesting input port proposes one still-valid
    // request, chosen by a persistent round-robin pointer over its VCs.
    for (const int in : touched_ins_) {
      if (grants_in_[static_cast<std::size_t>(in)] >=
          cfg_.max_grants_per_input) {
        continue;
      }
      const auto& cand = by_input_[static_cast<std::size_t>(in)];
      const auto n = static_cast<std::uint32_t>(cand.size());
      const std::uint32_t start = input_rr_[static_cast<std::size_t>(in)];
      for (std::uint32_t step = 0; step < n; ++step) {
        const int idx = cand[(start + step) % n];
        const auto& req = requests[static_cast<std::size_t>(idx)];
        if (req.granted) continue;
        if (grants_out_[static_cast<std::size_t>(req.out_port)] >=
            cfg_.max_grants_per_output) {
          continue;
        }
        auto& props = proposals_[static_cast<std::size_t>(req.out_port)];
        if (props.empty()) touched_outs_.push_back(req.out_port);
        props.push_back(idx);
        break;  // one proposal per input port per iteration
      }
    }
    std::sort(touched_outs_.begin(), touched_outs_.end());

    // Output stage: each proposed-to output port picks one winner.
    for (const int out : touched_outs_) {
      auto& props = proposals_[static_cast<std::size_t>(out)];
      if (props.empty()) continue;

      if (cfg_.transit_priority && !cfg_.age_arbitration) {
        // Age arbitration supersedes the priority classes: it *is* the
        // explicit fairness mechanism (oldest packet wins regardless of
        // transit/injection class), per Abts & Weisser.
        // If any transit (non-injection) request wants this output,
        // injection requests are not eligible this iteration.
        const bool has_transit =
            std::any_of(props.begin(), props.end(), [&](int idx) {
              return !requests[static_cast<std::size_t>(idx)].is_injection;
            });
        if (has_transit) {
          std::erase_if(props, [&](int idx) {
            return requests[static_cast<std::size_t>(idx)].is_injection;
          });
        }
      }

      int winner = -1;
      if (cfg_.age_arbitration) {
        // Oldest packet first (minimum generation timestamp).
        for (int idx : props) {
          if (winner < 0 || requests[static_cast<std::size_t>(idx)].age <
                                requests[static_cast<std::size_t>(winner)].age) {
            winner = idx;
          }
        }
      } else {
        // Round-robin over input-port index with a persistent pointer.
        const std::uint32_t ptr = output_rr_[static_cast<std::size_t>(out)];
        std::uint32_t best_dist = ~0u;
        for (int idx : props) {
          const auto in = static_cast<std::uint32_t>(
              requests[static_cast<std::size_t>(idx)].in_port);
          const std::uint32_t dist =
              (in + static_cast<std::uint32_t>(num_inputs_) - ptr) %
              static_cast<std::uint32_t>(num_inputs_);
          if (dist < best_dist) {
            best_dist = dist;
            winner = idx;
          }
        }
      }
      if (winner < 0) continue;

      auto& req = requests[static_cast<std::size_t>(winner)];
      req.granted = true;
      ++grants_in_[static_cast<std::size_t>(req.in_port)];
      ++grants_out_[static_cast<std::size_t>(out)];
      input_rr_[static_cast<std::size_t>(req.in_port)] += 1;
      if (!cfg_.age_arbitration) {
        output_rr_[static_cast<std::size_t>(out)] =
            (static_cast<std::uint32_t>(req.in_port) + 1) %
            static_cast<std::uint32_t>(num_inputs_);
      }
    }
  }

  // Leave the input buckets empty for the next call; the proposal
  // buckets of the final iteration are cleared lazily by the next
  // call's first iteration (touched_outs_ keeps naming them).
  for (const int in : touched_ins_) {
    by_input_[static_cast<std::size_t>(in)].clear();
  }
}

}  // namespace dragonfly
