// Shared scaffolding for the reproduction benches.
//
// Every bench binary reproduces one table or figure of the paper:
// it prints a configuration preamble, the measured rows/series, and the
// paper's expected shape, and mirrors the series through the unified
// ResultWriter under results_dir(). Scenarios are selected by registry
// name (routing_registry()/traffic_registry()); the declarative
// ExperimentSpec in bench_setup() carries the sweep. Environment knobs
// (see DESIGN.md):
//   REPRO_FULL=1  — paper-scale run (h=6, 5,256 nodes, Table I windows)
//   REPRO_H=<n>   — override the dragonfly radix (default 3 small, 6 full)
//   REPRO_SEEDS   — seeds averaged per point (default 2 small, 3 full)
//   REPRO_LOADS   — thin the offered-load sweep to this many points
//   REPRO_CYCLES  — override the measured window (warmup = half of it)
//   REPRO_OUT     — result output directory (default "results")
//   REPRO_FORMAT  — result file format, csv (default) or json
#pragma once

#include <iostream>
#include <string>
#include <vector>

#include "core/api.hpp"

namespace benchutil {

using namespace dragonfly;

/// The operating point of the fairness experiments (Figs. 4/6, Tables
/// II/III). The paper uses 0.4 at h=6; at reduced scale the oblivious
/// mechanisms saturate earlier, so the equivalent below-oblivious-
/// saturation point is 0.3 (see EXPERIMENTS.md).
inline double fairness_load(const BenchSetup& setup) {
  return setup.full_scale || setup.spec.base.topo.h >= 6 ? 0.4 : 0.3;
}

/// Paper legend label for a registry key ("par-mm" -> "In-Trns-MM");
/// custom keys label as themselves.
inline std::string display_name(const std::string& routing_key) {
  const auto kind = try_routing_kind(routing_key);
  return kind ? to_string(*kind) : routing_key;
}

/// Paper legend: the "MIN/Obl-RRG" reference line is MIN under uniform
/// traffic and non-minimal oblivious RRG under the adversarial patterns.
inline std::string reference_routing(const std::string& traffic_key) {
  return traffic_key == "uniform" ? "min" : "val-rrg";
}

/// The seven curves of Figures 2/5 for one traffic pattern, by name.
inline std::vector<std::string> figure_routings(
    const std::string& traffic_key) {
  std::vector<std::string> keys{reference_routing(traffic_key)};
  for (const std::string& key : paper_routing_names()) {
    if (key != keys.front()) keys.push_back(key);
  }
  return keys;
}

inline std::string curve_label(const std::string& routing_key,
                               const std::string& traffic_key) {
  if (routing_key == reference_routing(traffic_key) &&
      (routing_key == "min" || routing_key == "val-rrg")) {
    return "MIN/Obl-RRG";
  }
  return display_name(routing_key);
}

/// Run the full latency/throughput figure for one traffic pattern.
inline std::vector<Curve> run_figure(const BenchSetup& setup,
                                     const std::string& traffic_key,
                                     bool transit_priority) {
  std::vector<Curve> curves;
  for (const std::string& key : figure_routings(traffic_key)) {
    ExperimentSpec spec = setup.spec;
    spec.base.routing_name = key;
    spec.base.traffic_name = traffic_key;
    spec.base.transit_priority = transit_priority;
    spec.base.apply_vc_defaults();
    Curve curve;
    curve.label = curve_label(key, traffic_key);
    curve.points = run_spec(spec);
    curves.push_back(std::move(curve));
  }
  return curves;
}

/// Run the per-router injection / fairness experiment (one load point).
inline std::vector<Curve> run_fairness(const BenchSetup& setup,
                                       bool transit_priority) {
  std::vector<SimConfig> configs;
  std::vector<std::string> labels;
  for (const std::string& key : paper_routing_names()) {
    SimConfig cfg = setup.spec.base;
    cfg.routing_name = key;
    cfg.traffic_name = "advc";
    cfg.load = fairness_load(setup);
    cfg.transit_priority = transit_priority;
    cfg.apply_vc_defaults();
    configs.push_back(cfg);
    labels.push_back(display_name(key));
  }
  const std::vector<AveragedResult> results =
      run_configs(configs, setup.spec.seeds);
  std::vector<Curve> curves;
  for (std::size_t i = 0; i < results.size(); ++i) {
    curves.push_back(Curve{labels[i], {results[i]}});
  }
  return curves;
}

}  // namespace benchutil
