// Shared scaffolding for the reproduction benches.
//
// Every bench binary reproduces one table or figure of the paper:
// it prints a configuration preamble, the measured rows/series, and the
// paper's expected shape, and mirrors the series to CSV under
// results_dir(). Environment knobs (see DESIGN.md):
//   REPRO_FULL=1  — paper-scale run (h=6, 5,256 nodes, Table I windows)
//   REPRO_H=<n>   — override the dragonfly radix (default 3 small, 6 full)
//   REPRO_SEEDS   — seeds averaged per point (default 2 small, 3 full)
//   REPRO_LOADS   — thin the offered-load sweep to this many points
//   REPRO_CYCLES  — override the measured window (warmup = half of it)
//   REPRO_OUT     — CSV output directory (default "results")
#pragma once

#include <iostream>
#include <string>
#include <vector>

#include "core/api.hpp"

namespace benchutil {

using namespace dragonfly;

/// The operating point of the fairness experiments (Figs. 4/6, Tables
/// II/III). The paper uses 0.4 at h=6; at reduced scale the oblivious
/// mechanisms saturate earlier, so the equivalent below-oblivious-
/// saturation point is 0.3 (see EXPERIMENTS.md).
inline double fairness_load(const BenchSetup& setup) {
  return setup.full_scale || setup.base.topo.h >= 6 ? 0.4 : 0.3;
}

/// Paper legend label: the "MIN/Obl-RRG" reference line is MIN under UN
/// and non-minimal oblivious RRG under the adversarial patterns.
inline RoutingKind reference_routing(TrafficKind traffic) {
  return traffic == TrafficKind::kUniform ? RoutingKind::kMinimal
                                          : RoutingKind::kObliviousRrg;
}

/// The seven curves of Figures 2/5 for one traffic pattern.
inline std::vector<RoutingKind> figure_routings(TrafficKind traffic) {
  std::vector<RoutingKind> kinds{reference_routing(traffic)};
  for (RoutingKind kind : paper_routings()) {
    if (kind != kinds.front()) kinds.push_back(kind);
  }
  return kinds;
}

inline std::string curve_label(RoutingKind kind, TrafficKind traffic) {
  if (kind == reference_routing(traffic) &&
      (kind == RoutingKind::kMinimal || kind == RoutingKind::kObliviousRrg)) {
    return "MIN/Obl-RRG";
  }
  return to_string(kind);
}

/// Run the full latency/throughput figure for one traffic pattern.
inline std::vector<Curve> run_figure(const BenchSetup& setup,
                                     TrafficKind traffic,
                                     bool transit_priority) {
  std::vector<Curve> curves;
  for (RoutingKind kind : figure_routings(traffic)) {
    SimConfig base = setup.base;
    base.routing = kind;
    base.traffic = traffic;
    base.transit_priority = transit_priority;
    base.apply_vc_defaults();
    Curve curve;
    curve.label = curve_label(kind, traffic);
    curve.points = run_sweep(base, setup.loads, setup.seeds);
    curves.push_back(std::move(curve));
  }
  return curves;
}

/// Run the per-router injection / fairness experiment (one load point).
inline std::vector<Curve> run_fairness(const BenchSetup& setup,
                                       bool transit_priority) {
  std::vector<SimConfig> configs;
  std::vector<std::string> labels;
  for (RoutingKind kind : paper_routings()) {
    SimConfig cfg = setup.base;
    cfg.routing = kind;
    cfg.traffic = TrafficKind::kAdvConsecutive;
    cfg.load = fairness_load(setup);
    cfg.transit_priority = transit_priority;
    cfg.apply_vc_defaults();
    configs.push_back(cfg);
    labels.push_back(to_string(kind));
  }
  const std::vector<AveragedResult> results =
      run_configs(configs, setup.seeds);
  std::vector<Curve> curves;
  for (std::size_t i = 0; i < results.size(); ++i) {
    curves.push_back(Curve{labels[i], {results[i]}});
  }
  return curves;
}

}  // namespace benchutil
