// Ablation C: router microarchitecture sensitivity — internal speedup
// (Table I: 2x) and buffer sizing. Quantifies how much the paper's
// "frequency speedup 2x" and deep global buffers matter for throughput.
#include "bench_util.hpp"

int main() {
  using namespace benchutil;
  const BenchSetup setup = bench_setup();
  report_preamble(
      std::cout, "Ablation C — router speedup and buffer sizing",
      setup.spec.base, setup.spec.seeds,
      "the 2x speedup exists to hide HoL blocking and allocator "
      "suboptimality (Sec. IV-A): expect a visible UN throughput drop at "
      "1x; halving the global input buffers mainly hurts adversarial "
      "traffic (shorter credit window on the long links)");

  Table table({"config", "UN acc @0.8", "UN lat @0.8", "ADVc acc @0.4",
               "ADVc lat @0.4"});
  table.set_title("Ablation C — In-Trns-MM router parameter sweep");

  struct Variant {
    std::string label;
    int grants;
    int global_buf;
    int out_queue;
  };
  const Variant variants[] = {
      {"2x speedup, 256-phit global buf (paper)", 2, 256, 32},
      {"1x speedup", 1, 256, 32},
      {"3x speedup", 3, 256, 32},
      {"128-phit global buffers", 2, 128, 32},
      {"64-phit global buffers", 2, 64, 32},
      {"64-phit output queues", 2, 256, 64},
  };
  for (const Variant& v : variants) {
    double un_acc = 0;
    double un_lat = 0;
    double advc_acc = 0;
    double advc_lat = 0;
    for (int pass = 0; pass < 2; ++pass) {
      SimConfig cfg = setup.spec.base;
      cfg.routing_name = "par-mm";
      cfg.max_grants_per_output = v.grants;
      cfg.max_grants_per_input = v.grants;
      cfg.global_input_buffer = v.global_buf;
      cfg.output_queue_size = v.out_queue;
      cfg.traffic_name = pass == 0 ? "uniform"
                              : "advc";
      cfg.load = pass == 0 ? 0.8 : 0.4;
      cfg.apply_vc_defaults();
      const AveragedResult r = run_averaged(cfg, setup.spec.seeds);
      (pass == 0 ? un_acc : advc_acc) = r.accepted_load;
      (pass == 0 ? un_lat : advc_lat) = r.avg_latency;
    }
    table.add_row({v.label, un_acc, un_lat, advc_acc, advc_lat});
  }
  table.print(std::cout);
  mirror_table(table, "ablation_router");
  return 0;
}
