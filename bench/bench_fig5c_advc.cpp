// Figure 5c: Figure 2c repeated without transit-over-injection priority.
#include "bench_util.hpp"

int main() {
  using namespace benchutil;
  const BenchSetup setup = bench_setup();
  report_preamble(
      std::cout, "Figure 5c — ADVc traffic, priority OFF", setup.spec.base,
      setup.spec.seeds,
      "the unfairness-driven latency anomaly shrinks markedly but is not "
      "eliminated; in-transit throughput recovers towards the offered load");
  const auto curves = run_figure(setup, "advc",
                                 /*transit_priority=*/false);
  report_latency_throughput(std::cout, "Figure 5c (ADVc, priority OFF)",
                            "fig5c_advc_nopriority", curves);
  return 0;
}
