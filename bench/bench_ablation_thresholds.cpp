// Ablation D: congestion-threshold sensitivity.
//  - PiggyBack's global threshold T (Table I: 3) controls how eagerly the
//    saturation bits fire: lower T diverts more (better ADV, worse UN).
//  - The in-transit candidate-eligibility threshold (Table I: 43%)
//    controls which non-minimal links are acceptable once the minimal
//    output is credit-blocked.
#include "bench_util.hpp"

int main() {
  using namespace benchutil;
  const BenchSetup setup = bench_setup();
  report_preamble(
      std::cout, "Ablation D — adaptive-routing threshold sensitivity",
      setup.spec.base, setup.spec.seeds,
      "the paper's operating point (T=3 global, 43% in-transit) balances "
      "diversion eagerness; extremes either refuse to divert (throughput "
      "collapse towards MIN under ADVc) or divert onto busy candidates");

  Table pb({"PB global T", "ADVc accepted", "ADVc latency", "UN accepted",
            "UN latency"});
  pb.set_title("PiggyBack (Src-RRG) saturation threshold sweep");
  for (double t : {1.5, 3.0, 6.0, 12.0}) {
    double advc_acc = 0;
    double advc_lat = 0;
    double un_acc = 0;
    double un_lat = 0;
    for (int pass = 0; pass < 2; ++pass) {
      SimConfig cfg = setup.spec.base;
      cfg.routing_name = "pb-rrg";
      cfg.pb_threshold_global = t;
      cfg.traffic_name = pass == 0 ? "advc"
                              : "uniform";
      cfg.load = pass == 0 ? fairness_load(setup) : 0.6;
      cfg.apply_vc_defaults();
      const AveragedResult r = run_averaged(cfg, setup.spec.seeds);
      (pass == 0 ? advc_acc : un_acc) = r.accepted_load;
      (pass == 0 ? advc_lat : un_lat) = r.avg_latency;
    }
    pb.add_row({t, advc_acc, advc_lat, un_acc, un_lat});
  }
  pb.print(std::cout);
  mirror_table(pb, "ablation_pb_threshold");
  std::cout << "\n";

  Table it({"in-transit threshold", "ADVc accepted", "ADVc latency",
            "ADVc CoV", "min inj"});
  it.set_title("in-transit (MM) candidate-eligibility threshold sweep");
  for (double t : {0.1, 0.25, 0.43, 0.7, 1.0}) {
    SimConfig cfg = setup.spec.base;
    cfg.routing_name = "par-mm";
    cfg.intransit_threshold = t;
    cfg.traffic_name = "advc";
    cfg.load = fairness_load(setup);
    cfg.apply_vc_defaults();
    const AveragedResult r = run_averaged(cfg, setup.spec.seeds);
    it.add_row({t, r.accepted_load, r.avg_latency, r.fairness.cov,
                r.fairness.min_injections});
  }
  it.print(std::cout);
  mirror_table(it, "ablation_intransit_threshold");
  return 0;
}
