#!/usr/bin/env bash
# Record the simulator-speed baseline: run the bench_micro_simspeed
# google-benchmark binary (Release build) and distill its JSON output
# into a committed BENCH_<pr>.json entry (see DESIGN.md "Bench baseline
# format").
#
# Usage: bench/run_baseline.sh <build_dir> <out_json> [benchmark_filter]
#
# The default filter covers the cycle-kernel benches the CI perf-smoke
# job tracks: BM_NetworkStepUniform (active + scan reference) and
# BM_SessionStep.
set -euo pipefail

BUILD_DIR=${1:?usage: run_baseline.sh <build_dir> <out_json> [filter]}
OUT=${2:?usage: run_baseline.sh <build_dir> <out_json> [filter]}
FILTER=${3:-'BM_NetworkStepUniform|BM_NetworkStepUniformScan|BM_NetworkStepUniformSharded|BM_NetworkStepAllreduce|BM_NetworkStepChurn|BM_SessionStep|BM_ServiceRequest'}

BIN="$BUILD_DIR/bench_micro_simspeed"
if [[ ! -x "$BIN" ]]; then
  echo "error: $BIN not found or not executable (build with google-benchmark installed)" >&2
  exit 1
fi

# A baseline from a non-Release tree would silently neuter the CI perf
# guard (absolute numbers several times too low). Refuse to record one.
BUILD_TYPE=$(sed -n 's/^CMAKE_BUILD_TYPE:[^=]*=//p' "$BUILD_DIR/CMakeCache.txt" 2>/dev/null || true)
if [[ "$BUILD_TYPE" != Release* ]]; then
  echo "error: $BUILD_DIR is a '$BUILD_TYPE' build; record baselines from a Release tree" >&2
  exit 1
fi

RAW=$(mktemp)
trap 'rm -f "$RAW"' EXIT
"$BIN" --benchmark_filter="$FILTER" --benchmark_format=json \
  --benchmark_min_time=0.5 > "$RAW"

CMAKE_BUILD_TYPE="$BUILD_TYPE" python3 - "$RAW" "$OUT" <<'EOF'
import json
import os
import sys

raw_path, out_path = sys.argv[1], sys.argv[2]
with open(raw_path) as f:
    raw = json.load(f)

benchmarks = {}
UNIT_NS = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}
for b in raw.get("benchmarks", []):
    if b.get("run_type") == "aggregate":
        continue
    # One iteration == one simulated cycle for the kernel benches, one
    # served request for the BM_ServiceRequest* benches; either way the
    # baseline stores ns/iteration and iterations/sec.
    ns = b["real_time"] * UNIT_NS[b.get("time_unit", "ns")]
    benchmarks[b["name"]] = {
        "ns_per_cycle": round(ns, 1),
        "cycles_per_sec": round(1e9 / ns, 1),
    }

def speedup(active, scan):
    if active in benchmarks and scan in benchmarks:
        return round(benchmarks[scan]["ns_per_cycle"] /
                     benchmarks[active]["ns_per_cycle"], 3)
    return None

out = {
    "schema": "dragonfly-bench-baseline-v1",
    "command": "bench/run_baseline.sh (bench_micro_simspeed, Release)",
    "context": {
        # cmake_build_type is the simulator's own tree (checked Release
        # above); google-benchmark's library_build_type describes only
        # the benchmark library package.
        "cmake_build_type": os.environ.get("CMAKE_BUILD_TYPE", ""),
        **{k: raw.get("context", {}).get(k)
           for k in ("host_name", "num_cpus", "mhz_per_cpu")},
    },
    "benchmarks": benchmarks,
    # Machine-independent health signals: the active kernel's speedup
    # over the dense reference scan, measured in the same process, plus
    # the sharded kernel's throughput ratios vs its own shards=1 row
    # (same process, same machine — but NOTE: the shard ratios are only
    # meaningful on a multi-core host; a 1-CPU container measures pure
    # sharding overhead, so they are reported here and guarded in CI's
    # multi-core perf-smoke job via PERF_SMOKE_SHARDS_MIN rather than
    # compared against the committed baseline).
    "derived": {
        # Same-process service-path ratios: what the canonical-hash
        # result cache and warm starts buy over a cold request.
        "service_hit_speedup":
            speedup("BM_ServiceRequestHit", "BM_ServiceRequestMiss"),
        "service_warm_speedup":
            speedup("BM_ServiceRequestWarm", "BM_ServiceRequestMiss"),
        # Workload-driver step-time ratios (uniform ns / workload ns at
        # the same h=3, 50% point, same process): a regression in the
        # serial WorkloadDriver::on_cycle / per-job attribution path
        # drives these down, which the ratio-tolerance check guards.
        "workload_allreduce_step_ratio":
            speedup("BM_NetworkStepAllreduce/3", "BM_NetworkStepUniform/3/50"),
        "workload_churn_step_ratio":
            speedup("BM_NetworkStepChurn/3", "BM_NetworkStepUniform/3/50"),
        "active_scan_speedup_lowload":
            speedup("BM_NetworkStepUniform/3/5", "BM_NetworkStepUniformScan/3/5"),
        "active_scan_speedup_saturation":
            speedup("BM_NetworkStepUniform/3/50", "BM_NetworkStepUniformScan/3/50"),
        "shards_speedup_h4_50": {
            str(s): speedup(
                f"BM_NetworkStepUniformSharded/4/50/{s}/real_time",
                "BM_NetworkStepUniformSharded/4/50/1/real_time")
            for s in (2, 4, 8)
        },
        "shards_speedup_h5_50": {
            "4": speedup(
                "BM_NetworkStepUniformSharded/5/50/4/real_time",
                "BM_NetworkStepUniformSharded/5/50/1/real_time"),
        },
    },
}
with open(out_path, "w") as f:
    json.dump(out, f, indent=2, sort_keys=True)
    f.write("\n")
print(f"wrote {out_path} ({len(benchmarks)} benchmarks)")
EOF
