// Figure 5b: Figure 2b repeated without transit-over-injection priority.
#include "bench_util.hpp"

int main() {
  using namespace benchutil;
  const BenchSetup setup = bench_setup();
  report_preamble(
      std::cout, "Figure 5b — ADV+1 traffic, priority OFF", setup.spec.base,
      setup.spec.seeds,
      "without the priority, in-transit CRG/MM lose their starvation "
      "latency peak; RRG's peak moves to a much higher load");
  const auto curves = run_figure(setup, "adv",
                                 /*transit_priority=*/false);
  report_latency_throughput(std::cout, "Figure 5b (ADV+1, priority OFF)",
                            "fig5b_adv_nopriority", curves);
  return 0;
}
