// Figure 6: injected packets per router in one group under ADVc traffic,
// without transit-over-injection priority.
#include "bench_util.hpp"

int main() {
  using namespace benchutil;
  const BenchSetup setup = bench_setup();
  report_preamble(
      std::cout,
      "Figure 6 — injected packets per router (group 0), ADVc, priority OFF",
      setup.spec.base, setup.spec.seeds,
      "oblivious unchanged; Src-CRG's bottleneck router now *over*-injects "
      "(>2x the others); in-transit fairness vastly improved and identical "
      "across RRG/CRG/MM — but still not as flat as oblivious");
  const auto curves = run_fairness(setup, /*transit_priority=*/false);
  std::cout << "offered load: " << fairness_load(setup)
            << " phits/(node*cycle)\n\n";
  report_injections_per_router(
      std::cout, "Figure 6 (injected packets per router, group 0)",
      "fig6_injection_nopriority", curves, /*group=*/0, setup.spec.base.topo.a);
  return 0;
}
