// Ablation A (the paper's Sec. VI future work): age arbitration as an
// explicit fairness mechanism. Compares per-router injections and
// fairness metrics for in-transit adaptive routing under ADVc, with the
// transit-over-injection priority, with and without age arbitration.
#include "bench_util.hpp"

int main() {
  using namespace benchutil;
  const BenchSetup setup = bench_setup();
  report_preamble(
      std::cout,
      "Ablation A — age arbitration (explicit fairness mechanism)",
      setup.spec.base, setup.spec.seeds,
      "the paper concludes explicit fairness mechanisms are required and "
      "points to age arbitration [Abts & Weisser]; expectation: age "
      "arbitration recovers most of the bottleneck router's injection "
      "share that the priority+overlap starves away");

  std::vector<Curve> curves;
  for (const std::string routing : {"par-rrg", "par-crg", "par-mm"}) {
    for (bool age : {false, true}) {
      SimConfig cfg = setup.spec.base;
      cfg.routing_name = routing;
      cfg.traffic_name = "advc";
      cfg.load = fairness_load(setup);
      cfg.transit_priority = true;
      cfg.age_arbitration = age;
      cfg.apply_vc_defaults();
      Curve curve;
      curve.label = display_name(routing) + (age ? "+age" : "");
      curve.points = {run_averaged(cfg, setup.spec.seeds)};
      curves.push_back(std::move(curve));
    }
  }
  std::cout << "offered load: " << fairness_load(setup)
            << " phits/(node*cycle)\n\n";
  report_fairness_table(std::cout,
                        "Ablation A (age arbitration vs round-robin)",
                        "ablation_age_arbitration", curves);
  report_injections_per_router(
      std::cout, "Ablation A (injected packets per router, group 0)",
      "ablation_age_injection", curves, /*group=*/0, setup.spec.base.topo.a);

  // Cost check: throughput/latency under UN must not regress.
  std::vector<Curve> un;
  for (bool age : {false, true}) {
    SimConfig cfg = setup.spec.base;
    cfg.routing_name = "par-mm";
    cfg.traffic_name = "uniform";
    cfg.load = 0.7;
    cfg.age_arbitration = age;
    cfg.apply_vc_defaults();
    un.push_back(Curve{age ? "In-Trns-MM+age" : "In-Trns-MM",
                       {run_averaged(cfg, setup.spec.seeds)}});
  }
  Table cost({"config", "UN accepted @0.7", "UN latency"});
  cost.set_title("Ablation A — uniform-traffic cost of age arbitration");
  for (const Curve& c : un) {
    cost.add_row({c.label, c.points[0].accepted_load,
                  c.points[0].avg_latency});
  }
  cost.print(std::cout);
  return 0;
}
