// Table II: fairness metrics (Min inj, Max/Min, CoV) for every routing
// mechanism under ADVc traffic, with transit-over-injection priority.
#include "bench_util.hpp"

int main() {
  using namespace benchutil;
  const BenchSetup setup = bench_setup();
  report_preamble(
      std::cout, "Table II — fairness metrics, ADVc, priority ON",
      setup.spec.base, setup.spec.seeds,
      "paper (h=6, load 0.4): Obl CoV~0.015-0.018, Max/Min~1.1; Src "
      "CoV~0.10-0.12, Max/Min~2.2-2.7; In-Trns Min inj collapses (37-69) "
      "with CoV~0.29 for all three policies");
  const auto curves = run_fairness(setup, /*transit_priority=*/true);
  std::cout << "offered load: " << fairness_load(setup)
            << " phits/(node*cycle)\n\n";
  report_fairness_table(std::cout, "Table II (fairness, priority ON)",
                        "table2_fairness_priority", curves);
  return 0;
}
