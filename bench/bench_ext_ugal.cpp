// Extension: UGAL-L versus PiggyBack. PB (Jiang et al.) was proposed to
// improve on UGAL's stale local estimates; this bench puts both
// source-adaptive mechanisms side by side under the paper's three
// patterns plus the extension patterns (shift, hotspot).
#include "bench_util.hpp"

int main() {
  using namespace benchutil;
  const BenchSetup setup = bench_setup();
  report_preamble(
      std::cout, "Extension — UGAL-L vs PiggyBack source-adaptive routing",
      setup.spec.base, setup.spec.seeds,
      "both divert under adversarial patterns; PB's in-group link-state "
      "broadcast reacts to remote congestion UGAL-L cannot see, while "
      "UGAL's local queues respond faster at the source router");

  Table table({"routing", "traffic", "accepted", "avg latency",
               "p99 latency", "global hops", "CoV"});
  table.set_title("source-adaptive comparison @ load 0.3");
  for (const std::string traffic :
       {"uniform", "adv", "advc", "shift", "hotspot"}) {
    for (const std::string routing :
         {"pb-rrg", "ugal-rrg", "pb-crg", "ugal-crg"}) {
      SimConfig cfg = setup.spec.base;
      cfg.routing_name = routing;
      cfg.traffic_name = traffic;
      cfg.load = 0.3;
      cfg.hotspot_fraction = 0.05;
      cfg.apply_vc_defaults();
      const SimResult r = run_simulation(cfg);
      table.add_row({display_name(routing), traffic, r.accepted_load,
                     r.avg_latency, r.p99_latency, r.avg_global_hops,
                     r.fairness.cov});
    }
  }
  table.print(std::cout);
  mirror_table(table, "ext_ugal_vs_pb");
  return 0;
}
