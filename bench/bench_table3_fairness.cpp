// Table III: fairness metrics under ADVc without transit-over-injection
// priority.
#include "bench_util.hpp"

int main() {
  using namespace benchutil;
  const BenchSetup setup = bench_setup();
  report_preamble(
      std::cout, "Table III — fairness metrics, ADVc, priority OFF",
      setup.spec.base, setup.spec.seeds,
      "paper (h=6, load 0.4): Obl unchanged; Src-CRG degrades (CoV~0.56, "
      "Max/Min~6.7 — the bottleneck router exploits its faster view of "
      "the links); In-Trns recovers to Max/Min~1.85, CoV~0.11 for all "
      "three policies — better, but still short of oblivious fairness");
  const auto curves = run_fairness(setup, /*transit_priority=*/false);
  std::cout << "offered load: " << fairness_load(setup)
            << " phits/(node*cycle)\n\n";
  report_fairness_table(std::cout, "Table III (fairness, priority OFF)",
                        "table3_fairness_nopriority", curves);
  return 0;
}
