// Ablation B: global-link arrangement sensitivity. The paper (Sec. III,
// footnote) notes that ADVc generalizes to any arrangement by picking the
// h groups wired to one router. We verify: under the *consecutive*
// arrangement the +1..+h pattern loads router 0 instead of router a-1,
// and the starvation simply moves with it.
#include "bench_util.hpp"

int main() {
  using namespace benchutil;
  const BenchSetup setup = bench_setup();
  report_preamble(
      std::cout, "Ablation B — global link arrangement (palmtree vs "
      "consecutive)",
      setup.spec.base, setup.spec.seeds,
      "the ADVc bottleneck is an arrangement property, not a palmtree "
      "quirk: under the consecutive arrangement the starved router is R0");

  Table table({"arrangement", "starved router", "min inj", "Max/Min", "CoV",
               "accepted"});
  table.set_title("Ablation B — In-Trns-MM under ADVc @ fairness load");
  for (const std::string arrangement : {"palmtree", "consecutive"}) {
    SimConfig cfg = setup.spec.base;
    cfg.arrangement = arrangement;
    cfg.routing_name = "par-mm";
    cfg.traffic_name = "advc";
    cfg.load = fairness_load(setup);
    cfg.apply_vc_defaults();
    const AveragedResult r = run_averaged(cfg, setup.spec.seeds);
    // Identify the starved router inside group 0.
    int argmin = 0;
    for (int i = 1; i < cfg.topo.a; ++i) {
      if (r.injections_per_router[static_cast<std::size_t>(i)] <
          r.injections_per_router[static_cast<std::size_t>(argmin)]) {
        argmin = i;
      }
    }
    table.add_row({arrangement, std::string("R") + std::to_string(argmin),
                   r.fairness.min_injections, r.fairness.max_over_min,
                   r.fairness.cov, r.accepted_load});
  }
  table.print(std::cout);
  mirror_table(table, "ablation_arrangement");
  return 0;
}
