// Figure 2a: latency and accepted load vs offered load under Uniform
// Random traffic, with transit-over-injection priority.
#include "bench_util.hpp"

int main() {
  using namespace benchutil;
  const BenchSetup setup = bench_setup();
  report_preamble(
      std::cout, "Figure 2a — UN traffic, transit-over-injection priority ON",
      setup.spec.base, setup.spec.seeds,
      "all mechanisms competitive; MIN lowest latency; RRG variants pay an "
      "extra local hop (higher latency); oblivious Valiant saturates near "
      "half of MIN's throughput");
  const auto curves = run_figure(setup, "uniform",
                                 /*transit_priority=*/true);
  report_latency_throughput(std::cout, "Figure 2a (UN, priority ON)",
                            "fig2a_un_priority", curves);
  return 0;
}
