// Micro-benchmarks (google-benchmark): raw allocator and simulator speed.
// Not a paper experiment — used to keep the simulator fast enough for the
// full-scale (h=6, 5,256-node) reproduction runs.
#include <benchmark/benchmark.h>

#include <sstream>
#include <string>
#include <vector>

#include "core/api.hpp"
#include "service/engine.hpp"

namespace {

using namespace dragonfly;

void BM_SeparableAllocator(benchmark::State& state) {
  const int ports = static_cast<int>(state.range(0));
  SeparableAllocator alloc(ports, ports, {});
  Rng rng(7);
  std::vector<AllocRequest> requests;
  for (auto _ : state) {
    state.PauseTiming();
    requests.clear();
    for (int in = 0; in < ports; ++in) {
      for (VcId vc = 0; vc < 3; ++vc) {
        AllocRequest r;
        r.in_port = in;
        r.in_vc = vc;
        r.out_port = static_cast<PortId>(
            rng.below(static_cast<std::uint64_t>(ports)));
        r.is_injection = in < ports / 3;
        requests.push_back(r);
      }
    }
    state.ResumeTiming();
    alloc.allocate(requests);
    benchmark::DoNotOptimize(requests.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(requests.size()));
}
BENCHMARK(BM_SeparableAllocator)->Arg(11)->Arg(23);

/// Steps one warmed-up uniform-traffic network. Args: (radix h, offered
/// load in %, kernel: 0 = active, 1 = scan). The low-load points (5%)
/// are where the active-set kernel shines — most routers/ports idle —
/// and the 50% points sit at/near saturation. The scan rows keep the
/// dense reference kernel honest and give CI a machine-independent
/// active/scan speedup ratio.
void NetworkStepUniform(benchmark::State& state, SimKernel kernel) {
  const int h = static_cast<int>(state.range(0));
  SimConfig cfg = SimConfig::small(h);
  cfg.routing_name = "par-mm";
  cfg.traffic_name = "uniform";
  cfg.load = static_cast<double>(state.range(1)) / 100.0;
  cfg.kernel = kernel;
  cfg.apply_vc_defaults();
  Network net(cfg);
  for (int i = 0; i < 500; ++i) net.step();  // warm the pipeline
  for (auto _ : state) net.step();
  state.SetItemsProcessed(state.iterations() * net.num_routers());
  state.counters["nodes"] = net.num_nodes();
}

void BM_NetworkStepUniform(benchmark::State& state) {
  NetworkStepUniform(state, SimKernel::kActive);
}
BENCHMARK(BM_NetworkStepUniform)
    ->Args({2, 5})
    ->Args({3, 5})
    ->Args({4, 5})
    ->Args({2, 50})
    ->Args({3, 50})
    ->Args({4, 50});

void BM_NetworkStepUniformScan(benchmark::State& state) {
  NetworkStepUniform(state, SimKernel::kScan);
}
BENCHMARK(BM_NetworkStepUniformScan)->Args({3, 5})->Args({3, 50});

/// Sharded stepping. Args: (radix h, offered load in %, sim.shards).
/// Bit-identical to the serial rows — only wall-clock may move. The
/// saturated h=4 rows are the headline scaling measurement
/// (run_baseline.sh derives the shards>1 vs shards=1 throughput ratios
/// that CI's perf-smoke guards); shards=1 goes through the same kernel
/// with the mailbox path disabled, isolating the sharding overhead.
void BM_NetworkStepUniformSharded(benchmark::State& state) {
  const int h = static_cast<int>(state.range(0));
  SimConfig cfg = SimConfig::small(h);
  cfg.routing_name = "par-mm";
  cfg.traffic_name = "uniform";
  cfg.load = static_cast<double>(state.range(1)) / 100.0;
  cfg.kernel = SimKernel::kActive;
  cfg.shards = static_cast<int>(state.range(2));
  cfg.apply_vc_defaults();
  Network net(cfg);
  for (int i = 0; i < 500; ++i) net.step();
  for (auto _ : state) net.step();
  state.SetItemsProcessed(state.iterations() * net.num_routers());
  state.counters["nodes"] = net.num_nodes();
  state.counters["shards"] = static_cast<double>(net.num_shards());
}
// UseRealTime: wall-clock is the honest metric for a multi-threaded
// step (the pool's CPU time is spread across workers).
BENCHMARK(BM_NetworkStepUniformSharded)
    ->Args({4, 50, 1})
    ->Args({4, 50, 2})
    ->Args({4, 50, 4})
    ->Args({4, 50, 8})
    ->Args({5, 50, 1})
    ->Args({5, 50, 4})
    ->UseRealTime();

void BM_NetworkStepAdvc(benchmark::State& state) {
  const int h = static_cast<int>(state.range(0));
  SimConfig cfg = SimConfig::small(h);
  cfg.routing_name = "par-mm";
  cfg.traffic_name = "advc";
  cfg.load = 0.4;
  cfg.apply_vc_defaults();
  Network net(cfg);
  for (int i = 0; i < 500; ++i) net.step();
  for (auto _ : state) net.step();
  state.SetItemsProcessed(state.iterations() * net.num_routers());
}
BENCHMARK(BM_NetworkStepAdvc)->Arg(3);

/// Workload-driver cost, collective mode: a 16-rank ring allreduce
/// dependency-stepped by the serial driver on top of the active
/// kernel; the other nodes idle. Arg: radix h. run_baseline.sh derives
/// the uniform/allreduce step-time ratio at h=3 so a regression in the
/// driver's on_cycle/on_delivered path (run every cycle, serial) shows
/// up machine-independently in CI's perf-smoke job.
void BM_NetworkStepAllreduce(benchmark::State& state) {
  const int h = static_cast<int>(state.range(0));
  SimConfig cfg = SimConfig::small(h);
  cfg.routing_name = "par-mm";
  cfg.traffic_name = "uniform";
  cfg.load = 0.5;
  cfg.workload.mode = "collective";
  cfg.workload.collective = "ring";
  cfg.workload.participants = 16;
  cfg.apply_vc_defaults();
  Network net(cfg);
  for (int i = 0; i < 500; ++i) net.step();
  for (auto _ : state) net.step();
  state.SetItemsProcessed(state.iterations() * net.num_routers());
  state.counters["nodes"] = net.num_nodes();
}
BENCHMARK(BM_NetworkStepAllreduce)->Arg(2)->Arg(3);

/// Workload-driver cost, churn mode: jobs arrive, get placed on router
/// blocks, run per-job rank-space mixes and depart — exercising the
/// placement, pattern-rebind, node-gate flip and per-job metrics
/// attribution paths every few hundred cycles while every in-job node
/// injects at the offered load. Comparable to BM_NetworkStepUniform at
/// the same (h, 50%) point; run_baseline.sh derives the ratio.
void BM_NetworkStepChurn(benchmark::State& state) {
  const int h = static_cast<int>(state.range(0));
  SimConfig cfg = SimConfig::small(h);
  cfg.routing_name = "par-mm";
  cfg.traffic_name = "uniform";
  cfg.load = 0.5;
  cfg.workload.mode = "churn";
  cfg.workload.jobs = 3;
  cfg.workload.arrival_cycles = 300;
  cfg.workload.job_cycles = 1'500;
  cfg.workload.mix = "uniform,shift";
  cfg.apply_vc_defaults();
  Network net(cfg);
  for (int i = 0; i < 500; ++i) net.step();
  for (auto _ : state) net.step();
  state.SetItemsProcessed(state.iterations() * net.num_routers());
  state.counters["nodes"] = net.num_nodes();
}
BENCHMARK(BM_NetworkStepChurn)->Arg(2)->Arg(3);

void BM_SessionStep(benchmark::State& state) {
  // Phase-machine overhead over raw Network::step — must stay noise.
  const int h = static_cast<int>(state.range(0));
  SimConfig cfg = SimConfig::small(h);
  cfg.routing_name = "par-mm";
  cfg.traffic_name = "uniform";
  cfg.load = 0.5;
  cfg.warmup_cycles = 500;
  cfg.measure_cycles = 1 << 28;  // never ends inside the benchmark
  cfg.apply_vc_defaults();
  Session session(cfg);
  session.advance_to(SessionPhase::kMeasure);
  for (auto _ : state) session.step(1);
  state.SetItemsProcessed(state.iterations() *
                          session.network().num_routers());
}
BENCHMARK(BM_SessionStep)->Arg(2)->Arg(3);

void BM_SessionCheckpoint(benchmark::State& state) {
  // Serialization cost of a warmed-up session (queues populated).
  SimConfig cfg = SimConfig::small(static_cast<int>(state.range(0)));
  cfg.routing_name = "par-mm";
  cfg.traffic_name = "advc";
  cfg.load = 0.4;
  cfg.apply_vc_defaults();
  Session session(cfg);
  session.advance_to(SessionPhase::kMeasure);
  std::size_t bytes = 0;
  for (auto _ : state) {
    std::ostringstream os;
    session.checkpoint(os);
    bytes = os.str().size();
    benchmark::DoNotOptimize(os);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(bytes));
  state.counters["checkpoint_bytes"] = static_cast<double>(bytes);
}
BENCHMARK(BM_SessionCheckpoint)->Arg(2)->Arg(3);

// --- sweep-service request paths --------------------------------------------

/// The small request every service bench uses: one point, two replicas.
std::vector<std::string> service_items(int measure_cycles) {
  return {"topology=dfly:2,4,2",
          "routing=min",
          "traffic=uniform",
          "load=0.2",
          "seeds=2",
          "warmup_cycles=200",
          "measure_cycles=" + std::to_string(measure_cycles)};
}

/// Cold path: every iteration is a fresh service (empty caches), so the
/// request pays topology construction + warmup + measurement.
void BM_ServiceRequestMiss(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    SweepService service(ServiceOptions{.workers = 1});
    state.ResumeTiming();
    const RequestReport rep = service.execute(service_items(300));
    benchmark::DoNotOptimize(rep.points[0].result.accepted_load);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ServiceRequestMiss)->Unit(benchmark::kMicrosecond);

/// Served-from-cache path: the steady state of a re-requested sweep.
/// The gap to BM_ServiceRequestMiss is the cache's whole value.
void BM_ServiceRequestHit(benchmark::State& state) {
  SweepService service(ServiceOptions{.workers = 1});
  service.execute(service_items(300));  // prime
  for (auto _ : state) {
    const RequestReport rep = service.execute(service_items(300));
    benchmark::DoNotOptimize(rep.points[0].result.accepted_load);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ServiceRequestHit)->Unit(benchmark::kMicrosecond);

/// Warm-start path: alternate two refined windows through a one-entry
/// result cache, so every iteration misses the result cache but
/// resumes the cached Measure-boundary checkpoint (restore + ~300
/// measured cycles, no warmup).
void BM_ServiceRequestWarm(benchmark::State& state) {
  SweepService service(ServiceOptions{.workers = 1, .result_entries = 1});
  service.execute(service_items(300));  // prime the warm checkpoint
  bool flip = false;
  for (auto _ : state) {
    flip = !flip;
    const RequestReport rep = service.execute(service_items(flip ? 301 : 302));
    benchmark::DoNotOptimize(rep.points[0].result.accepted_load);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ServiceRequestWarm)->Unit(benchmark::kMicrosecond);

void BM_MinimalOutputOracle(benchmark::State& state) {
  const DragonflyTopology topo = DragonflyTopology::balanced_palmtree(6);
  Rng rng(3);
  for (auto _ : state) {
    const auto at = static_cast<RouterId>(
        rng.below(static_cast<std::uint64_t>(topo.num_routers())));
    const auto dst = static_cast<NodeId>(
        rng.below(static_cast<std::uint64_t>(topo.num_nodes())));
    benchmark::DoNotOptimize(topo.minimal_output(at, dst));
  }
}
BENCHMARK(BM_MinimalOutputOracle);

void BM_RngBelow(benchmark::State& state) {
  Rng rng(5);
  for (auto _ : state) benchmark::DoNotOptimize(rng.below(73));
}
BENCHMARK(BM_RngBelow);

}  // namespace

BENCHMARK_MAIN();
