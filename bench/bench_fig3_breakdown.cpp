// Figure 3: breakdown of the latency components for in-transit adaptive
// routing with the MM policy under ADVc traffic, over the full injection-
// rate range.
#include "bench_util.hpp"

int main() {
  using namespace benchutil;
  const BenchSetup setup = bench_setup();
  report_preamble(
      std::cout, "Figure 3 — latency breakdown, In-Trns-MM, ADVc",
      setup.spec.base, setup.spec.seeds,
      "misrouting grows until saturation (~0.5); local/global congestion "
      "stays modest; the injection-queue component peaks near the "
      "starvation onset and then shrinks towards saturation (the starving "
      "bottleneck router is hidden by averaging)");

  // The paper sweeps 0.01..1.0 at fine granularity.
  std::vector<double> loads{0.01, 0.05, 0.1, 0.15, 0.2, 0.25, 0.3,
                            0.35, 0.4,  0.45, 0.5, 0.6,  0.7,  0.8,
                            0.9,  1.0};
  SimConfig base = setup.spec.base;
  base.routing_name = "par-mm";
  base.traffic_name = "advc";
  base.apply_vc_defaults();
  Curve curve;
  curve.label = "In-Trns-MM";
  curve.points = run_sweep(base, loads, setup.spec.seeds);
  report_latency_breakdown(std::cout,
                           "Figure 3 (latency components, cycles)",
                           "fig3_breakdown", curve);
  return 0;
}
