// Figure 2c: latency and accepted load vs offered load under the new
// Adversarial-consecutive (ADVc) traffic, with transit-over-injection
// priority — the paper's central experiment.
#include "bench_util.hpp"

int main() {
  using namespace benchutil;
  const BenchSetup setup = bench_setup();
  report_preamble(
      std::cout,
      "Figure 2c — ADVc traffic, transit-over-injection priority ON",
      setup.spec.base, setup.spec.seeds,
      "MIN caps at h/(a*p); oblivious/source mechanisms have modest "
      "throughput; in-transit adaptive leads at saturation but its "
      "pre-saturation accepted load drops below oblivious and latency "
      "peaks near the starvation onset (~0.15 at paper scale)");
  const auto curves = run_figure(setup, "advc",
                                 /*transit_priority=*/true);
  report_latency_throughput(std::cout, "Figure 2c (ADVc, priority ON)",
                            "fig2c_advc_priority", curves);
  return 0;
}
