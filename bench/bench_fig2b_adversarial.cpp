// Figure 2b: latency and accepted load vs offered load under ADV+1
// traffic, with transit-over-injection priority.
#include "bench_util.hpp"

int main() {
  using namespace benchutil;
  BenchSetup setup = bench_setup();
  report_preamble(
      std::cout,
      "Figure 2b — ADV+1 traffic, transit-over-injection priority ON",
      setup.spec.base, setup.spec.seeds,
      "MIN collapses at 1/(a*p); CRG beats RRG; in-transit adaptive best "
      "throughput; latency peaks where the bottleneck router starts to "
      "starve (extremely low load for In-Trns-CRG)");
  const auto curves = run_figure(setup, "adv",
                                 /*transit_priority=*/true);
  report_latency_throughput(std::cout, "Figure 2b (ADV+1, priority ON)",
                            "fig2b_adv_priority", curves);
  return 0;
}
