// Figure 5a: Figure 2a repeated without transit-over-injection priority.
#include "bench_util.hpp"

int main() {
  using namespace benchutil;
  const BenchSetup setup = bench_setup();
  report_preamble(
      std::cout, "Figure 5a — UN traffic, priority OFF", setup.spec.base,
      setup.spec.seeds,
      "removing the priority slightly increases congestion: MIN throughput "
      "drops ~1.2% under UN; otherwise shapes match Figure 2a");
  const auto curves = run_figure(setup, "uniform",
                                 /*transit_priority=*/false);
  report_latency_throughput(std::cout, "Figure 5a (UN, priority OFF)",
                            "fig5a_un_nopriority", curves);
  return 0;
}
