// Figure 4: number of injected packets per router in one group of the
// Dragonfly under ADVc traffic, with transit-over-injection priority.
#include "bench_util.hpp"

int main() {
  using namespace benchutil;
  const BenchSetup setup = bench_setup();
  report_preamble(
      std::cout,
      "Figure 4 — injected packets per router (group 0), ADVc, priority ON",
      setup.spec.base, setup.spec.seeds,
      "oblivious flat across routers; source-adaptive skews at R0/R(a-1); "
      "in-transit starves the bottleneck router R(a-1) by orders of "
      "magnitude, regardless of the global misrouting policy");
  const auto curves = run_fairness(setup, /*transit_priority=*/true);
  std::cout << "offered load: " << fairness_load(setup)
            << " phits/(node*cycle)\n\n";
  report_injections_per_router(
      std::cout, "Figure 4 (injected packets per router, group 0)",
      "fig4_injection_priority", curves, /*group=*/0, setup.spec.base.topo.a);
  return 0;
}
