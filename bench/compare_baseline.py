#!/usr/bin/env python3
"""Compare a fresh bench baseline against the committed one.

Used by the CI perf-smoke job:

    bench/run_baseline.sh build current.json
    bench/compare_baseline.py --baseline BENCH_5.json --current current.json

Two classes of check:

* absolute cycles/sec per benchmark, with a generous tolerance
  (default 30%, --tolerance / $PERF_SMOKE_TOLERANCE) because CI runner
  hardware varies;
* the active/scan kernel speedup ratios, which are measured within one
  process on one machine and therefore travel across hardware — these
  guard the active-set kernel's actual advantage (--ratio-tolerance).

Exits non-zero on any breach, printing a per-benchmark table either way.
"""
import argparse
import json
import os
import sys


def load(path):
    with open(path) as f:
        doc = json.load(f)
    if doc.get("schema") != "dragonfly-bench-baseline-v1":
        sys.exit(f"{path}: unexpected schema {doc.get('schema')!r}")
    build_type = (doc.get("context") or {}).get("cmake_build_type", "")
    if not str(build_type).startswith("Release"):
        # A debug-tree baseline makes every future Release run pass the
        # tolerance regardless of real regressions.
        sys.exit(f"{path}: recorded from a {build_type!r} build; "
                 "baselines must come from a Release tree")
    return doc


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--baseline", required=True)
    ap.add_argument("--current", required=True)
    ap.add_argument(
        "--tolerance",
        type=float,
        default=float(os.environ.get("PERF_SMOKE_TOLERANCE", "0.30")),
        help="allowed fractional cycles/sec regression per benchmark",
    )
    ap.add_argument(
        "--ratio-tolerance",
        type=float,
        default=float(os.environ.get("PERF_SMOKE_RATIO_TOLERANCE", "0.30")),
        help="allowed fractional drop of the active/scan speedup ratios",
    )
    args = ap.parse_args()

    baseline = load(args.baseline)
    current = load(args.current)
    failures = []

    print(f"{'benchmark':45} {'baseline':>12} {'current':>12} {'ratio':>7}")
    for name, base in sorted(baseline["benchmarks"].items()):
        cur = current["benchmarks"].get(name)
        if cur is None:
            failures.append(f"{name}: missing from current run")
            continue
        ratio = cur["cycles_per_sec"] / base["cycles_per_sec"]
        flag = ""
        if ratio < 1.0 - args.tolerance:
            flag = "  << REGRESSION"
            failures.append(
                f"{name}: {cur['cycles_per_sec']:.0f} cycles/s vs baseline "
                f"{base['cycles_per_sec']:.0f} ({ratio:.2f}x, tolerance "
                f"{1.0 - args.tolerance:.2f}x)")
        print(f"{name:45} {base['cycles_per_sec']:>12.0f} "
              f"{cur['cycles_per_sec']:>12.0f} {ratio:>6.2f}x{flag}")

    for key, base_ratio in (baseline.get("derived") or {}).items():
        cur_ratio = (current.get("derived") or {}).get(key)
        if base_ratio is None:
            # A null ratio means the baseline was recorded without the
            # scan-reference benches — the machine-independent guard
            # would silently vanish. Refuse such a baseline.
            failures.append(
                f"derived.{key}: committed baseline has no ratio (was it "
                "generated with a custom --benchmark_filter?)")
            continue
        if cur_ratio is None:
            failures.append(f"derived.{key}: missing from current run")
            continue
        print(f"derived.{key}: baseline {base_ratio:.2f}x, "
              f"current {cur_ratio:.2f}x")
        if cur_ratio < base_ratio * (1.0 - args.ratio_tolerance):
            failures.append(
                f"derived.{key}: active/scan speedup fell to {cur_ratio:.2f}x "
                f"(baseline {base_ratio:.2f}x, tolerance "
                f"{1.0 - args.ratio_tolerance:.2f}x)")

    if failures:
        print("\nPERF-SMOKE FAILURES:", file=sys.stderr)
        for f in failures:
            print(f"  - {f}", file=sys.stderr)
        return 1
    print("\nperf smoke OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
