#!/usr/bin/env python3
"""Compare a fresh bench baseline against the committed one.

Used by the CI perf-smoke job:

    bench/run_baseline.sh build current.json
    bench/compare_baseline.py --baseline BENCH_5.json --current current.json

Two classes of check:

* absolute cycles/sec per benchmark, with a generous tolerance
  (default 30%, --tolerance / $PERF_SMOKE_TOLERANCE) because CI runner
  hardware varies;
* the active/scan kernel speedup ratios, which are measured within one
  process on one machine and therefore travel across hardware — these
  guard the active-set kernel's actual advantage (--ratio-tolerance).

The sharded-kernel throughput ratios (derived.shards_speedup_*) are
deliberately *excluded* from the baseline-relative comparison: they
depend on the runner's core count (a 1-CPU container measures pure
sharding overhead), so comparing them against a baseline recorded
elsewhere would be meaningless. Instead --shards-min (or
$PERF_SMOKE_SHARDS_MIN) asserts an absolute floor on the *current* run's
best shards>1 ratio at saturated h=4 — CI's multi-core perf-smoke job
sets it; leave it unset on single-core hosts.

Exits non-zero on any breach, printing a per-benchmark table either way.
"""
import argparse
import json
import os
import sys


def load(path):
    with open(path) as f:
        doc = json.load(f)
    if doc.get("schema") != "dragonfly-bench-baseline-v1":
        sys.exit(f"{path}: unexpected schema {doc.get('schema')!r}")
    build_type = (doc.get("context") or {}).get("cmake_build_type", "")
    if not str(build_type).startswith("Release"):
        # A debug-tree baseline makes every future Release run pass the
        # tolerance regardless of real regressions.
        sys.exit(f"{path}: recorded from a {build_type!r} build; "
                 "baselines must come from a Release tree")
    return doc


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--baseline", required=True)
    ap.add_argument("--current", required=True)
    ap.add_argument(
        "--tolerance",
        type=float,
        default=float(os.environ.get("PERF_SMOKE_TOLERANCE", "0.30")),
        help="allowed fractional cycles/sec regression per benchmark",
    )
    ap.add_argument(
        "--ratio-tolerance",
        type=float,
        default=float(os.environ.get("PERF_SMOKE_RATIO_TOLERANCE", "0.30")),
        help="allowed fractional drop of the active/scan speedup ratios",
    )
    shards_min_env = os.environ.get("PERF_SMOKE_SHARDS_MIN", "")
    ap.add_argument(
        "--shards-min",
        type=float,
        default=float(shards_min_env) if shards_min_env else None,
        help="required minimum of the current run's best "
             "derived.shards_speedup_h4_50 ratio (multi-core hosts only; "
             "unset = skip)",
    )
    args = ap.parse_args()

    baseline = load(args.baseline)
    current = load(args.current)
    failures = []

    print(f"{'benchmark':45} {'baseline':>12} {'current':>12} {'ratio':>7}")
    for name, base in sorted(baseline["benchmarks"].items()):
        cur = current["benchmarks"].get(name)
        if cur is None:
            failures.append(f"{name}: missing from current run")
            continue
        ratio = cur["cycles_per_sec"] / base["cycles_per_sec"]
        flag = ""
        if ratio < 1.0 - args.tolerance:
            flag = "  << REGRESSION"
            failures.append(
                f"{name}: {cur['cycles_per_sec']:.0f} cycles/s vs baseline "
                f"{base['cycles_per_sec']:.0f} ({ratio:.2f}x, tolerance "
                f"{1.0 - args.tolerance:.2f}x)")
        print(f"{name:45} {base['cycles_per_sec']:>12.0f} "
              f"{cur['cycles_per_sec']:>12.0f} {ratio:>6.2f}x{flag}")

    for key, base_ratio in (baseline.get("derived") or {}).items():
        if isinstance(base_ratio, dict):
            # Shard scaling ratios: machine-dependent (core count), so
            # never compared against the committed baseline — see
            # --shards-min below for the absolute guard.
            continue
        cur_ratio = (current.get("derived") or {}).get(key)
        if base_ratio is None:
            # A null ratio means the baseline was recorded without the
            # scan-reference benches — the machine-independent guard
            # would silently vanish. Refuse such a baseline.
            failures.append(
                f"derived.{key}: committed baseline has no ratio (was it "
                "generated with a custom --benchmark_filter?)")
            continue
        if cur_ratio is None:
            failures.append(f"derived.{key}: missing from current run")
            continue
        print(f"derived.{key}: baseline {base_ratio:.2f}x, "
              f"current {cur_ratio:.2f}x")
        if cur_ratio < base_ratio * (1.0 - args.ratio_tolerance):
            failures.append(
                f"derived.{key}: active/scan speedup fell to {cur_ratio:.2f}x "
                f"(baseline {base_ratio:.2f}x, tolerance "
                f"{1.0 - args.ratio_tolerance:.2f}x)")

    shard_ratios = (current.get("derived") or {}).get(
        "shards_speedup_h4_50") or {}
    shown = {s: r for s, r in sorted(shard_ratios.items())
             if r is not None}
    if shown:
        print("derived.shards_speedup_h4_50 (current run): " +
              ", ".join(f"shards={s}: {r:.2f}x" for s, r in shown.items()))
    if args.shards_min is not None:
        best = max(shown.values(), default=None)
        if best is None:
            failures.append(
                "shards-min: current run has no shards_speedup_h4_50 ratios "
                "(was bench_micro_simspeed run with a custom filter?)")
        elif best < args.shards_min:
            failures.append(
                f"shards-min: best shards>1 throughput ratio at saturated "
                f"h=4 is {best:.2f}x < required {args.shards_min:.2f}x")

    if failures:
        print("\nPERF-SMOKE FAILURES:", file=sys.stderr)
        for f in failures:
            print(f"  - {f}", file=sys.stderr)
        return 1
    print("\nperf smoke OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
